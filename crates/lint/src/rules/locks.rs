//! Lock-analysis rule family over the syntactic model + call graph.
//!
//! Three rules:
//!
//! - `locks-order` — build the global lock-acquisition-order graph
//!   (edge `A → B` when `B` is acquired while a guard for `A` is live,
//!   directly or through a resolved call) and fail on cycles; when
//!   `[locks] order` in `lint.toml` declares the hierarchy, also fail
//!   on edges that contradict the declared partial order, on locks that
//!   nest but are undeclared, and on declared locks never seen at any
//!   acquisition site.
//! - `locks-io` — no guard may be live across a blocking call (storage
//!   reads, `SimNet` sends, channel `recv`): direct calls by sink name,
//!   transitive paths through the call graph with the witness chain in
//!   the message. `[locks] io_exempt` entries and inline hatches are
//!   the two escape valves, and both are staleness-tracked.
//! - `locks-guard` — guard hygiene: a guard bound to `_` (dropped
//!   immediately — almost always a bug), and re-acquiring a lock that
//!   is already held in scope (instant deadlock for a `Mutex`) unless
//!   the lock is in a declared self-nesting class (`[locks] classes`,
//!   e.g. all-shards-ascending merges).
//!
//! Analysis is deliberately under-approximating (see `callgraph.rs`):
//! an unresolved call contributes nothing, so every reported edge has a
//! concrete witness position.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::diagnostics::Finding;
use crate::lexer::{Lexed, TokenKind};
use crate::source::{FileKind, SourceFile};
use crate::syntax::{is_keyword, Syntax};
use icache_obs::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Declared-order / cycle rule id.
pub const RULE_ORDER: &str = "locks-order";
/// Lock-across-blocking-I/O rule id.
pub const RULE_IO: &str = "locks-io";
/// Guard-hygiene rule id.
pub const RULE_GUARD: &str = "locks-guard";

/// Everything the stale-suppression rule and the `--lock-graph`
/// artifact need beyond the findings themselves.
pub struct Analysis {
    /// The lock graph as canonical JSON (nodes, edges, cycles, blocking
    /// paths) — the CI artifact.
    pub graph: Json,
    /// Every lock name observed at an acquisition site.
    pub seen: BTreeSet<String>,
    /// `[locks] io_exempt` entries that suppressed a real blocking path.
    pub io_exempt_used: BTreeSet<String>,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
struct Acq {
    /// Canonical lock name: `Type.field`, `static.NAME`, or
    /// `local:<fn>:<ident>` for locals the hierarchy cannot name.
    lock: String,
    /// Token index of the acquisition site.
    tok: usize,
    line: u32,
    col: u32,
    /// Token range `(start, end)` the guard is live over (inclusive);
    /// `start == end` for guards dropped immediately (`let _`).
    held: (usize, usize),
}

struct EdgeInfo {
    path: String,
    line: u32,
    col: u32,
    /// Resolved callee the inner lock is reached through, when the edge
    /// is transitive.
    via: Option<String>,
}

/// Run the lock rules. `syntaxes[i]` models `files[i]`; `graph` is the
/// workspace call graph over the same file list.
pub fn check(
    files: &[SourceFile],
    syntaxes: &[Syntax],
    graph: &CallGraph,
    cfg: &Config,
    out: &mut Vec<Finding>,
) -> Analysis {
    let n = graph.fns.len();
    let mut direct: Vec<Vec<Acq>> = vec![Vec::new(); n];
    let mut guard_ret: Vec<Option<String>> = vec![None; n];

    let analyzable = |id: usize| -> bool {
        let key = &graph.fns[id];
        let file = &files[key.file];
        let item = &syntaxes[key.file].fns[key.syn_idx];
        matches!(file.kind, FileKind::Lib | FileKind::Bin)
            && item.body.is_some()
            && !file.is_test_line(item.sig_line)
            && !cfg.lock_wrappers.contains(&key.name)
    };

    // Pass 1: direct acquisition sites + guard-returning detection.
    for id in 0..n {
        if !analyzable(id) {
            continue;
        }
        extract_direct(
            id,
            files,
            syntaxes,
            graph,
            cfg,
            &mut direct,
            &mut guard_ret,
            out,
        );
    }

    // Pass 2: synthesize acquisitions at call sites whose resolved
    // target returns a guard (accessor methods like `Obs::lock`).
    let mut synth: Vec<Vec<Acq>> = vec![Vec::new(); n];
    for id in 0..n {
        if !analyzable(id) {
            continue;
        }
        let key = &graph.fns[id];
        let syn = &syntaxes[key.file];
        let lexed = &files[key.file].lexed;
        let body = syn.fns[key.syn_idx]
            .body
            .unwrap_or((0, lexed.tokens.len().saturating_sub(1)));
        let direct_toks: BTreeSet<usize> = direct[id].iter().map(|a| a.tok).collect();
        for c in &graph.calls[id] {
            // A call site already modeled as an acquisition (a `.lock()`
            // that happened to resolve to some fn named `lock`) must not
            // be modeled twice.
            if cfg.lock_wrappers.contains(&c.name) || direct_toks.contains(&c.tok) {
                continue;
            }
            let Some(t) = c.target else { continue };
            let Some(lock) = guard_ret[t].clone() else {
                continue;
            };
            // The acquisition expression ends at the call's close paren.
            let Some(close) = call_close(lexed, c.tok) else {
                continue;
            };
            let held = classify_binding(
                lexed, syn, body, c.tok, close, &lock, None, out, files, key.file,
            );
            synth[id].push(Acq {
                lock,
                tok: c.tok,
                line: c.line,
                col: c.col,
                held,
            });
        }
    }

    // Pass 3a: transitive lock closure per function.
    let mut closure: Vec<BTreeSet<String>> = direct
        .iter()
        .map(|v| v.iter().map(|a| a.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut add: Vec<String> = Vec::new();
            for c in &graph.calls[id] {
                if let Some(t) = c.target {
                    for l in &closure[t] {
                        if !closure[id].contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
            }
            for l in add {
                closure[id].insert(l);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3b: which functions (transitively) reach a blocking sink,
    // and through which call chain.
    let mut reach_block: Vec<Option<Vec<String>>> = vec![None; n];
    loop {
        let mut changed = false;
        for id in 0..n {
            if reach_block[id].is_some() {
                continue;
            }
            for c in &graph.calls[id] {
                if cfg.lock_blocking.contains(&c.name) {
                    reach_block[id] = Some(vec![c.name.clone()]);
                    changed = true;
                    break;
                }
                if let Some(t) = c.target {
                    if let Some(chain) = reach_block[t].clone() {
                        let mut full = vec![graph.fns[t].display()];
                        full.extend(chain);
                        reach_block[id] = Some(full);
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 4: nesting edges, re-lock hygiene, and blocking-under-guard.
    let class_locks: BTreeSet<&str> = cfg.lock_classes.iter().map(|(l, _)| l.as_str()).collect();
    let exempt_locks: BTreeSet<&str> = cfg.lock_io_exempt.iter().map(|(l, _)| l.as_str()).collect();
    let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut sites: BTreeMap<String, u64> = BTreeMap::new();
    let mut io_exempt_used: BTreeSet<String> = BTreeSet::new();
    let mut blocking_json: Vec<Json> = Vec::new();

    for id in 0..n {
        if !analyzable(id) {
            continue;
        }
        let key = &graph.fns[id];
        let file = &files[key.file];
        let mut acqs: Vec<Acq> = direct[id].iter().chain(synth[id].iter()).cloned().collect();
        acqs.sort_by_key(|a| a.tok);
        let acq_toks: BTreeSet<usize> = acqs.iter().map(|a| a.tok).collect();
        for a in &acqs {
            seen.insert(a.lock.clone());
            *sites.entry(a.lock.clone()).or_insert(0) += 1;
        }
        for (i, a) in acqs.iter().enumerate() {
            // Direct nesting: a later acquisition inside `a`'s range.
            for b in acqs.iter().skip(i + 1) {
                if b.tok <= a.held.0 || b.tok > a.held.1 {
                    continue;
                }
                if b.lock == a.lock {
                    if class_locks.contains(a.lock.as_str()) || file.allowed(RULE_GUARD, b.line) {
                        continue;
                    }
                    out.push(Finding {
                        rule: RULE_GUARD,
                        path: file.rel.clone(),
                        line: b.line,
                        col: b.col,
                        message: format!(
                            "lock `{}` re-acquired while its guard from line {} is still \
                             live — instant deadlock for a Mutex; drop the first guard or \
                             declare the lock in [locks] classes",
                            a.lock, a.line
                        ),
                    });
                    continue;
                }
                edges
                    .entry((a.lock.clone(), b.lock.clone()))
                    .or_insert(EdgeInfo {
                        path: file.rel.clone(),
                        line: b.line,
                        col: b.col,
                        via: None,
                    });
            }
            // Calls made while `a` is held: transitive nesting + blocking.
            for c in &graph.calls[id] {
                if c.tok <= a.held.0 || c.tok > a.held.1 {
                    continue;
                }
                if cfg.lock_wrappers.contains(&c.name) || acq_toks.contains(&c.tok) {
                    continue; // already modeled as an acquisition
                }
                if let Some(t) = c.target {
                    for l in &closure[t] {
                        if *l == a.lock {
                            if class_locks.contains(a.lock.as_str())
                                || file.allowed(RULE_GUARD, c.line)
                            {
                                continue;
                            }
                            out.push(Finding {
                                rule: RULE_GUARD,
                                path: file.rel.clone(),
                                line: c.line,
                                col: c.col,
                                message: format!(
                                    "call to `{}` re-acquires lock `{}` while its guard \
                                     from line {} is still live — instant deadlock for a \
                                     Mutex; drop the guard before the call",
                                    graph.fns[t].display(),
                                    a.lock,
                                    a.line
                                ),
                            });
                            continue;
                        }
                        edges
                            .entry((a.lock.clone(), l.clone()))
                            .or_insert(EdgeInfo {
                                path: file.rel.clone(),
                                line: c.line,
                                col: c.col,
                                via: Some(graph.fns[t].display()),
                            });
                    }
                }
                // Blocking: by sink name directly, or transitively.
                let chain: Option<Vec<String>> = if cfg.lock_blocking.contains(&c.name) {
                    Some(vec![c.name.clone()])
                } else {
                    c.target.and_then(|t| {
                        reach_block[t].clone().map(|tail| {
                            let mut full = vec![graph.fns[t].display()];
                            full.extend(tail);
                            full
                        })
                    })
                };
                let Some(chain) = chain else { continue };
                let chain_text = chain.join(" -> ");
                let at = format!("{}:{}:{}", file.rel, c.line, c.col);
                let status = if exempt_locks.contains(a.lock.as_str()) {
                    io_exempt_used.insert(a.lock.clone());
                    "exempt"
                } else if file.allowed(RULE_IO, c.line) {
                    "hatched"
                } else {
                    out.push(Finding {
                        rule: RULE_IO,
                        path: file.rel.clone(),
                        line: c.line,
                        col: c.col,
                        message: format!(
                            "blocking call `{chain_text}` reached while lock `{}` is held \
                             (guard acquired at line {}) — release the guard before \
                             blocking I/O or add the lock to [locks] io_exempt with a reason",
                            a.lock, a.line
                        ),
                    });
                    "violation"
                };
                blocking_json.push(Json::Obj(vec![
                    ("lock".to_string(), Json::Str(a.lock.clone())),
                    ("chain".to_string(), Json::Str(chain_text)),
                    ("at".to_string(), Json::Str(at)),
                    ("status".to_string(), Json::Str(status.to_string())),
                ]));
            }
        }
    }

    // Pass 5: cycles + declared-order checks.
    let cycles = find_cycles(&edges);
    for cyc in &cycles {
        let first = (cyc[0].clone(), cyc[1].clone());
        if let Some(w) = edges.get(&first) {
            out.push(Finding {
                rule: RULE_ORDER,
                path: w.path.clone(),
                line: w.line,
                col: w.col,
                message: format!(
                    "lock-order cycle: {} — `{}` acquired here while `{}` held{}; every \
                     edge of the cycle has a concrete witness in the lock graph",
                    cyc.join(" -> "),
                    cyc[1],
                    cyc[0],
                    w.via
                        .as_ref()
                        .map(|v| format!(" (via `{v}`)"))
                        .unwrap_or_default(),
                ),
            });
        }
    }
    if !cfg.lock_order.is_empty() {
        let rank: BTreeMap<&str, usize> = cfg
            .lock_order
            .iter()
            .enumerate()
            .map(|(i, l)| (l.as_str(), i))
            .collect();
        let mut undeclared_reported: BTreeSet<String> = BTreeSet::new();
        for ((from, to), w) in &edges {
            match (rank.get(from.as_str()), rank.get(to.as_str())) {
                (Some(rf), Some(rt)) if rf > rt => out.push(Finding {
                    rule: RULE_ORDER,
                    path: w.path.clone(),
                    line: w.line,
                    col: w.col,
                    message: format!(
                        "`{to}` acquired while `{from}` held{}, but [locks] order declares \
                         `{to}` outermost-before `{from}` — acquire in declared order or \
                         fix the hierarchy",
                        w.via
                            .as_ref()
                            .map(|v| format!(" (via `{v}`)"))
                            .unwrap_or_default(),
                    ),
                }),
                _ => {}
            }
            for lock in [from, to] {
                if rank.contains_key(lock.as_str())
                    || lock.starts_with("local:")
                    || !undeclared_reported.insert(lock.clone())
                {
                    continue;
                }
                out.push(Finding {
                    rule: RULE_ORDER,
                    path: w.path.clone(),
                    line: w.line,
                    col: w.col,
                    message: format!(
                        "lock `{lock}` participates in nesting but is not declared in \
                         [locks] order — add it to the hierarchy"
                    ),
                });
            }
        }
        for lock in &cfg.lock_order {
            if !seen.contains(lock) {
                out.push(Finding {
                    rule: RULE_ORDER,
                    path: "lint.toml".to_string(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "declared lock `{lock}` never seen at any acquisition site — \
                         remove it from [locks] order or fix the field name"
                    ),
                });
            }
        }
    }

    let graph_json = build_graph_json(
        cfg,
        &seen,
        &sites,
        &edges,
        &cycles,
        blocking_json,
        &class_locks,
        &exempt_locks,
    );
    Analysis {
        graph: graph_json,
        seen,
        io_exempt_used,
    }
}

/// Index of the `)` closing the call whose name token is `name_tok`
/// (the `(` must directly follow the name).
fn call_close(lexed: &Lexed, name_tok: usize) -> Option<usize> {
    let toks = &lexed.tokens;
    if toks.get(name_tok + 1).map(|t| &t.kind) != Some(&TokenKind::Punct('(')) {
        return None;
    }
    let mut depth = 0i32;
    let mut i = name_tok + 1;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Result-adapter methods that keep the guard (`.expect(…)` etc.);
/// skipping them finds where the acquisition *expression* really ends.
fn skip_adapters(lexed: &Lexed, mut close: usize) -> usize {
    let toks = &lexed.tokens;
    loop {
        let dot = close + 1;
        let is_adapter = toks.get(dot).map(|t| &t.kind) == Some(&TokenKind::Punct('.'))
            && matches!(
                toks.get(dot + 1).map(|t| &t.kind),
                Some(TokenKind::Ident(m))
                    if m == "expect" || m == "unwrap" || m == "unwrap_or_else"
            )
            && toks.get(dot + 2).map(|t| &t.kind) == Some(&TokenKind::Punct('('));
        if !is_adapter {
            return close;
        }
        match call_close(lexed, dot + 1) {
            Some(c) => close = c,
            None => return close,
        }
    }
}

/// Classify the binding of an acquisition whose call closes at `close`,
/// and return the token range the guard is live over. Emits a
/// `locks-guard` finding for guards bound to `_`. When `guard_ret` is
/// `Some`, a tail-position acquisition records the enclosing function as
/// guard-returning instead.
#[allow(clippy::too_many_arguments)]
fn classify_binding(
    lexed: &Lexed,
    syn: &Syntax,
    body: (usize, usize),
    acq_tok: usize,
    close: usize,
    lock: &str,
    guard_ret: Option<&mut Option<String>>,
    out: &mut Vec<Finding>,
    files: &[SourceFile],
    file_idx: usize,
) -> (usize, usize) {
    let toks = &lexed.tokens;
    let end = skip_adapters(lexed, close);
    let block = syn.enclosing_block(lexed, body, acq_tok);
    let stmts = syn.statements(lexed, block.0, block.1);
    let stmt = stmts
        .iter()
        .copied()
        .find(|&(s, e)| s <= acq_tok && acq_tok <= e)
        .unwrap_or((acq_tok, end));
    let starts_with = |kw: &str| matches!(&toks[stmt.0].kind, TokenKind::Ident(s) if s == kw);
    let file = &files[file_idx];

    // Tail position: the expression ends the function body, or the
    // statement is `return <acq>;` — the guard escapes to the caller.
    let next = toks.get(end + 1).map(|t| &t.kind);
    if (end + 1 == body.1 && block == body) || starts_with("return") {
        if let Some(slot) = guard_ret {
            *slot = Some(lock.to_string());
        }
        return (acq_tok, stmt.1);
    }

    let is_let = starts_with("let");
    let let_bound = is_let
        && (next == Some(&TokenKind::Punct(';'))
            || matches!(next, Some(TokenKind::Ident(k)) if k == "else"));
    if let_bound {
        let names = let_pattern_names(lexed, stmt.0);
        if !names.is_empty() && names.iter().all(|n| n == "_") {
            let t = &toks[acq_tok];
            if !file.allowed(RULE_GUARD, t.line) {
                out.push(Finding {
                    rule: RULE_GUARD,
                    path: file.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "guard for `{lock}` bound to `_` is dropped immediately — the \
                         lock protects nothing here; bind a named guard or delete the call"
                    ),
                });
            }
            return (acq_tok, acq_tok);
        }
        // Bound guard: live to the end of the enclosing block, truncated
        // at an explicit `drop(name)`.
        let mut held_end = block.1;
        if names.len() == 1 {
            let mut j = stmt.1 + 1;
            while j + 3 <= block.1 {
                if matches!(&toks[j].kind, TokenKind::Ident(s) if s == "drop")
                    && toks[j + 1].kind == TokenKind::Punct('(')
                    && matches!(&toks[j + 2].kind, TokenKind::Ident(s) if *s == names[0])
                    && toks[j + 3].kind == TokenKind::Punct(')')
                {
                    held_end = j;
                    break;
                }
                j += 1;
            }
        }
        return (acq_tok, held_end);
    }

    // Temporary: the guard lives to the end of the enclosing statement.
    (acq_tok, stmt.1)
}

/// Identifiers bound by a `let` pattern: tokens between `let` and the
/// top-level `=`, stopping at a top-level `:` (type annotation),
/// excluding keywords and path/variant names (followed by `(` or `::`).
fn let_pattern_names(lexed: &Lexed, let_tok: usize) -> Vec<String> {
    let toks = &lexed.tokens;
    let mut names = Vec::new();
    let mut depth = 0i32;
    let mut i = let_tok + 1;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('>') => depth -= 1,
            TokenKind::Punct('=') if depth <= 0 => break,
            TokenKind::Punct(':') if depth <= 0 => break,
            TokenKind::Ident(s) => {
                let next = toks.get(i + 1).map(|t| &t.kind);
                let is_path = next == Some(&TokenKind::Punct('('))
                    || (next == Some(&TokenKind::Punct(':'))
                        && toks.get(i + 2).map(|t| &t.kind) == Some(&TokenKind::Punct(':')));
                if !is_keyword(s) && !is_path {
                    names.push(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    names
}

/// Extract the direct lock acquisitions of function `id`.
#[allow(clippy::too_many_arguments)]
fn extract_direct(
    id: usize,
    files: &[SourceFile],
    syntaxes: &[Syntax],
    graph: &CallGraph,
    cfg: &Config,
    direct: &mut [Vec<Acq>],
    guard_ret: &mut [Option<String>],
    out: &mut Vec<Finding>,
) {
    let key = &graph.fns[id];
    let file = &files[key.file];
    let syn = &syntaxes[key.file];
    let lexed = &file.lexed;
    let toks = &lexed.tokens;
    let item = &syn.fns[key.syn_idx];
    let Some(body) = item.body else { return };
    let display = key.display();

    // Field lookup through the enclosing impl type: per-file structs
    // first, then any same-named struct anywhere in the workspace.
    let field_lock = |field: &str, want_rwlock: bool| -> Option<String> {
        let ty = key.impl_type.as_deref()?;
        let item = syn
            .structs
            .get(ty)
            .or_else(|| syntaxes.iter().find_map(|s| s.structs.get(ty)))?;
        let f = item.fields.iter().find(|f| f.name == field)?;
        let ok = if want_rwlock {
            f.type_idents.iter().any(|t| t == "RwLock")
        } else {
            f.is_lock()
        };
        ok.then(|| format!("{ty}.{field}"))
    };
    let static_lock = |name: &str| -> Option<String> {
        let hit = syn
            .statics
            .iter()
            .chain(syntaxes.iter().flat_map(|s| s.statics.iter()))
            .find(|s| s.name == name)?;
        hit.is_lock.then(|| format!("static.{name}"))
    };
    // `self.stripe_of(id)` wrapper args: resolve through the accessor's
    // body — the single lock-typed `self.F` it projects.
    let accessor_lock = |accessor: &str| -> Option<String> {
        let ty = key.impl_type.as_deref()?;
        syntaxes.iter().enumerate().find_map(|(fi, s2)| {
            s2.fns
                .iter()
                .find(|f2| f2.name == accessor && f2.impl_type.as_deref() == Some(ty))
                .and_then(|f2| f2.body)
                .and_then(|b| unique_self_lock_field(&files[fi].lexed, b, &field_lock))
        })
    };
    // Bare-ident wrapper args (`for s in self.stripes { lock_counted(s, …) }`):
    // when this fn touches exactly one lock-typed field through `self`,
    // a borrowed lock ref can only alias that field.
    let own_unique = unique_self_lock_field(lexed, body, &field_lock);

    let mut p = body.0 + 1;
    while p < body.1 {
        let TokenKind::Ident(name) = &toks[p].kind else {
            p += 1;
            continue;
        };
        if toks.get(p + 1).map(|t| &t.kind) != Some(&TokenKind::Punct('(')) {
            p += 1;
            continue;
        }
        let prev = toks.get(p.wrapping_sub(1)).map(|t| &t.kind);
        let is_method = p >= 1 && prev == Some(&TokenKind::Punct('.'));

        let lock: Option<String> = if !is_method && cfg.lock_wrappers.contains(name) {
            // `lock_counted(&self.field[..], …)` — lock from first arg.
            wrapper_arg_lock(
                lexed,
                p,
                &display,
                &field_lock,
                &static_lock,
                &accessor_lock,
                own_unique.as_deref(),
            )
        } else if is_method && (name == "lock" || name == "try_lock") {
            receiver_lock(lexed, p, &display, false, &field_lock, &static_lock)
        } else if is_method
            && (name == "read" || name == "write")
            && toks.get(p + 2).map(|t| &t.kind) == Some(&TokenKind::Punct(')'))
        {
            // Zero-arg `.read()`/`.write()` on an RwLock field/static
            // only — `io::Read::read(&mut buf)` takes arguments.
            receiver_lock(lexed, p, &display, true, &field_lock, &static_lock)
        } else {
            None
        };

        let Some(lock) = lock else {
            p += 1;
            continue;
        };
        let Some(close) = call_close(lexed, p) else {
            p += 1;
            continue;
        };
        let t = &toks[p];
        let (line, col) = (t.line, t.col);
        let held = classify_binding(
            lexed,
            syn,
            body,
            p,
            close,
            &lock,
            Some(&mut guard_ret[id]),
            out,
            files,
            key.file,
        );
        direct[id].push(Acq {
            lock,
            tok: p,
            line,
            col,
            held,
        });
        p += 1;
    }
}

/// The single lock-typed field this body touches through `self`, when
/// exactly one distinct such field exists.
fn unique_self_lock_field(
    lexed: &Lexed,
    body: (usize, usize),
    field_lock: &dyn Fn(&str, bool) -> Option<String>,
) -> Option<String> {
    let toks = &lexed.tokens;
    let mut found: BTreeSet<String> = BTreeSet::new();
    let mut i = body.0;
    while i + 2 <= body.1 {
        if matches!(&toks[i].kind, TokenKind::Ident(s) if s == "self")
            && toks[i + 1].kind == TokenKind::Punct('.')
        {
            if let TokenKind::Ident(f) = &toks[i + 2].kind {
                if let Some(l) = field_lock(f, false) {
                    found.insert(l);
                }
            }
        }
        i += 1;
    }
    (found.len() == 1).then(|| found.into_iter().next().unwrap_or_default())
}

/// Resolve the lock acquired by a contention-counting wrapper call:
/// the first argument names it (`&self.stripes[i]`, `self.stripe_of(id)`,
/// a loop-borrowed stripe ref, `&CELL`, `m`).
#[allow(clippy::too_many_arguments)]
fn wrapper_arg_lock(
    lexed: &Lexed,
    name_tok: usize,
    fn_display: &str,
    field_lock: &dyn Fn(&str, bool) -> Option<String>,
    static_lock: &dyn Fn(&str) -> Option<String>,
    accessor_lock: &dyn Fn(&str) -> Option<String>,
    own_unique: Option<&str>,
) -> Option<String> {
    let toks = &lexed.tokens;
    let mut i = name_tok + 2;
    while matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Punct('&'))) {
        i += 1;
    }
    if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(s)) if s == "self")
        && toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('.'))
    {
        if let Some(TokenKind::Ident(field)) = toks.get(i + 2).map(|t| &t.kind) {
            if toks.get(i + 3).map(|t| &t.kind) == Some(&TokenKind::Punct('(')) {
                // `self.accessor(…)` — a stripe/shard projection.
                if let Some(l) = accessor_lock(field) {
                    return Some(l);
                }
            } else if let Some(l) = field_lock(field, false) {
                return Some(l);
            }
            return Some(format!("local:{fn_display}:{field}"));
        }
        return None;
    }
    if let Some(TokenKind::Ident(name)) = toks.get(i).map(|t| &t.kind) {
        if let Some(l) = static_lock(name) {
            return Some(l);
        }
        if let Some(l) = own_unique {
            return Some(l.to_string());
        }
        return Some(format!("local:{fn_display}:{name}"));
    }
    None
}

/// Resolve the receiver of `.lock()`/`.try_lock()`/`.read()`/`.write()`
/// at `name_tok` into a lock name. Returns `None` when the receiver is
/// not a lock (plain method call) — `want_rwlock` restricts to
/// `RwLock`-typed receivers for the read/write forms.
fn receiver_lock(
    lexed: &Lexed,
    name_tok: usize,
    fn_display: &str,
    want_rwlock: bool,
    field_lock: &dyn Fn(&str, bool) -> Option<String>,
    static_lock: &dyn Fn(&str) -> Option<String>,
) -> Option<String> {
    let toks = &lexed.tokens;
    let recv = name_tok.checked_sub(2)?;
    match &toks[recv].kind {
        TokenKind::Ident(s) if s == "self" => None, // `self.lock()` — a method call
        TokenKind::Ident(field)
            if recv >= 2
                && toks[recv - 1].kind == TokenKind::Punct('.')
                && matches!(&toks[recv - 2].kind, TokenKind::Ident(s) if s == "self") =>
        {
            // `self.field.lock()`: an acquisition only when the field's
            // declared type is a lock.
            field_lock(field, want_rwlock)
        }
        TokenKind::Ident(name) => {
            // Bare local or static: `GUARD.lock()`, `m.lock()`.
            if let Some(l) = static_lock(name) {
                return Some(l);
            }
            if want_rwlock {
                return None; // `reader.read()` etc. — too ambiguous
            }
            Some(format!("local:{fn_display}:{name}"))
        }
        TokenKind::Punct(']') => {
            // Indexed receiver: `self.field[i].lock()` or `cells[i].lock()`.
            let mut depth = 0i32;
            let mut j = recv;
            loop {
                match &toks[j].kind {
                    TokenKind::Punct(']') => depth += 1,
                    TokenKind::Punct('[') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            let base = j.checked_sub(1)?;
            match &toks[base].kind {
                TokenKind::Ident(field)
                    if base >= 2
                        && toks[base - 1].kind == TokenKind::Punct('.')
                        && matches!(&toks[base - 2].kind, TokenKind::Ident(s) if s == "self") =>
                {
                    field_lock(field, want_rwlock)
                }
                TokenKind::Ident(name) if !want_rwlock => {
                    Some(format!("local:{fn_display}:{name}"))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Enumerate simple cycles in the nesting graph. Each cycle is reported
/// once, rotated so its lexicographically-smallest node leads, and
/// rendered closed (`[a, b, a]`). Self-edges are excluded (they are the
/// re-lock hygiene rule's business).
fn find_cycles(edges: &BTreeMap<(String, String), EdgeInfo>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        if from != to {
            adj.entry(from).or_default().push(to);
        }
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS restricted to nodes >= start: each cycle is found exactly
        // once, from its smallest node.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some((node, next_idx)) = stack.last_mut() {
            let succs = adj.get(*node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next_idx >= succs.len() {
                on_path.remove(*node);
                path.pop();
                stack.pop();
                continue;
            }
            let succ = succs[*next_idx];
            *next_idx += 1;
            if succ == start {
                let mut cyc: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                cyc.push(start.to_string());
                found.insert(cyc);
                continue;
            }
            if succ < start || on_path.contains(succ) {
                continue;
            }
            on_path.insert(succ);
            path.push(succ);
            stack.push((succ, 0));
        }
    }
    found.into_iter().collect()
}

#[allow(clippy::too_many_arguments)]
fn build_graph_json(
    cfg: &Config,
    seen: &BTreeSet<String>,
    sites: &BTreeMap<String, u64>,
    edges: &BTreeMap<(String, String), EdgeInfo>,
    cycles: &[Vec<String>],
    blocking: Vec<Json>,
    class_locks: &BTreeSet<&str>,
    exempt_locks: &BTreeSet<&str>,
) -> Json {
    let rank: BTreeMap<&str, usize> = cfg
        .lock_order
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_str(), i))
        .collect();
    let mut names: BTreeSet<&str> = seen.iter().map(String::as_str).collect();
    names.extend(cfg.lock_order.iter().map(String::as_str));
    let nodes: Vec<Json> = names
        .iter()
        .map(|&name| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(name.to_string())),
                ("declared".to_string(), Json::Bool(rank.contains_key(name))),
                (
                    "rank".to_string(),
                    rank.get(name)
                        .map(|r| Json::UInt(*r as u64))
                        .unwrap_or(Json::Null),
                ),
                ("class".to_string(), Json::Bool(class_locks.contains(name))),
                (
                    "io_exempt".to_string(),
                    Json::Bool(exempt_locks.contains(name)),
                ),
                (
                    "sites".to_string(),
                    Json::UInt(sites.get(name).copied().unwrap_or(0)),
                ),
            ])
        })
        .collect();
    let edge_json: Vec<Json> = edges
        .iter()
        .map(|((from, to), w)| {
            Json::Obj(vec![
                ("from".to_string(), Json::Str(from.clone())),
                ("to".to_string(), Json::Str(to.clone())),
                (
                    "at".to_string(),
                    Json::Str(format!("{}:{}:{}", w.path, w.line, w.col)),
                ),
                (
                    "via".to_string(),
                    w.via.clone().map(Json::Str).unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    let cycle_json: Vec<Json> = cycles
        .iter()
        .map(|c| Json::Arr(c.iter().map(|n| Json::Str(n.clone())).collect()))
        .collect();
    Json::Obj(vec![
        ("nodes".to_string(), Json::Arr(nodes)),
        ("edges".to_string(), Json::Arr(edge_json)),
        ("cycles".to_string(), Json::Arr(cycle_json)),
        ("blocking".to_string(), Json::Arr(blocking)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(srcs: &[(&str, &str)], cfg: &Config) -> (Vec<Finding>, Analysis) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, s)| SourceFile::parse(rel.to_string(), None, FileKind::Lib, s))
            .collect();
        let syns: Vec<Syntax> = files.iter().map(|f| Syntax::build(&f.lexed)).collect();
        let graph = CallGraph::build(&files, &syns);
        let mut out = Vec::new();
        let analysis = check(&files, &syns, &graph, cfg, &mut out);
        (out, analysis)
    }

    fn run(src: &str) -> (Vec<Finding>, Analysis) {
        run_with(&[("a.rs", src)], &Config::default())
    }

    const TWO_LOCK_STRUCT: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n";

    #[test]
    fn nested_acquisition_records_an_edge() {
        let src = format!(
            "{TWO_LOCK_STRUCT}impl S {{ fn f(&self) {{ \
             let ga = self.a.lock().expect(\"lock poisoned in test fixture\"); \
             let gb = self.b.lock().expect(\"lock poisoned in test fixture\"); \
             use_both(ga, gb); }} }}"
        );
        let (out, an) = run(&src);
        assert!(out.is_empty(), "{out:?}");
        let edges = an.graph["edges"].as_array().map(|a| a.len());
        assert_eq!(edges, Some(1));
        assert!(an.seen.contains("S.a") && an.seen.contains("S.b"));
    }

    #[test]
    fn cycle_between_two_functions_is_found_with_witness() {
        let src = format!(
            "{TWO_LOCK_STRUCT}impl S {{\n\
             fn f(&self) {{ let g = self.a.lock().expect(\"poisoned in fixture\"); let h = self.b.lock().expect(\"poisoned in fixture\"); touch(g, h); }}\n\
             fn g(&self) {{ let g = self.b.lock().expect(\"poisoned in fixture\"); let h = self.a.lock().expect(\"poisoned in fixture\"); touch(g, h); }}\n\
             }}"
        );
        let (out, an) = run(&src);
        let cyc: Vec<_> = out.iter().filter(|f| f.rule == RULE_ORDER).collect();
        assert_eq!(cyc.len(), 1, "{out:?}");
        assert!(
            cyc[0].message.contains("S.a -> S.b -> S.a"),
            "{}",
            cyc[0].message
        );
        assert_eq!(an.graph["cycles"].as_array().map(|a| a.len()), Some(1));
    }

    #[test]
    fn blocking_call_under_guard_is_flagged_with_chain() {
        let src = "struct S { a: Mutex<u32> }\n\
                   impl S { fn f(&self) { let g = self.a.lock().expect(\"poisoned in fixture\"); step(self, g); } }\n\
                   fn step(s: &S, g: u32) { fetch_it(s, g); }\n\
                   fn fetch_it(s: &S, g: u32) { s.read_samples(g); }\n";
        let (out, _) = run(src);
        let io: Vec<_> = out.iter().filter(|f| f.rule == RULE_IO).collect();
        assert_eq!(io.len(), 1, "{out:?}");
        assert!(
            io[0].message.contains("step -> fetch_it -> read_samples"),
            "{}",
            io[0].message
        );
        assert!(io[0].message.contains("S.a"));
    }

    #[test]
    fn io_exempt_suppresses_and_is_recorded_used() {
        let src = "struct S { a: RwLock<u32> }\n\
                   impl S { fn f(&self) { let g = self.a.read(); self.read_samples(g); } }\n";
        let cfg = Config {
            lock_io_exempt: vec![("S.a".to_string(), "barrier by design".to_string())],
            ..Config::default()
        };
        let (out, an) = run_with(&[("a.rs", src)], &cfg);
        assert!(out.iter().all(|f| f.rule != RULE_IO), "{out:?}");
        assert!(an.io_exempt_used.contains("S.a"));
    }

    #[test]
    fn guard_bound_to_underscore_is_flagged() {
        let src = "struct S { a: Mutex<u32> }\n\
                   impl S { fn f(&self) { let _ = self.a.lock(); work(self); } }\n\
                   fn work(s: &S) {}\n";
        let (out, _) = run(src);
        assert_eq!(
            out.iter().filter(|f| f.rule == RULE_GUARD).count(),
            1,
            "{out:?}"
        );
        assert!(out[0].message.contains("bound to `_`"));
    }

    #[test]
    fn relock_is_guard_finding_unless_classed() {
        let src = "struct S { a: Mutex<u32> }\n\
                   impl S { fn f(&self) { let g = self.a.lock().expect(\"poisoned in fixture\"); \
                   let h = self.a.lock().expect(\"poisoned in fixture\"); touch(g, h); } }\n";
        let (out, _) = run(src);
        assert_eq!(
            out.iter().filter(|f| f.rule == RULE_GUARD).count(),
            1,
            "{out:?}"
        );
        let cfg = Config {
            lock_classes: vec![("S.a".to_string(), "ascending shard order".to_string())],
            ..Config::default()
        };
        let (out2, _) = run_with(&[("a.rs", src)], &cfg);
        assert!(out2.is_empty(), "{out2:?}");
    }

    #[test]
    fn declared_order_violation_and_undeclared_lock() {
        let src = format!(
            "{TWO_LOCK_STRUCT}impl S {{ fn f(&self) {{ \
             let g = self.b.lock().expect(\"poisoned in fixture\"); \
             let h = self.a.lock().expect(\"poisoned in fixture\"); touch(g, h); }} }}"
        );
        let cfg = Config {
            lock_order: vec!["S.a".to_string(), "S.b".to_string()],
            ..Config::default()
        };
        let (out, _) = run_with(&[("a.rs", &src)], &cfg);
        let order: Vec<_> = out.iter().filter(|f| f.rule == RULE_ORDER).collect();
        assert_eq!(order.len(), 1, "{out:?}");
        assert!(
            order[0].message.contains("declared"),
            "{}",
            order[0].message
        );

        // Same code, but only one of the two locks declared → the other
        // is reported as participating-but-undeclared, plus the
        // declared-never-seen direction for a phantom lock.
        let cfg2 = Config {
            lock_order: vec!["S.b".to_string(), "S.phantom".to_string()],
            ..Config::default()
        };
        let (out2, _) = run_with(&[("a.rs", &src)], &cfg2);
        assert!(
            out2.iter()
                .any(|f| f.rule == RULE_ORDER && f.message.contains("not declared")),
            "{out2:?}"
        );
        assert!(
            out2.iter().any(|f| f.rule == RULE_ORDER
                && f.path == "lint.toml"
                && f.message.contains("never seen")),
            "{out2:?}"
        );
    }

    #[test]
    fn wrapper_call_names_the_striped_field() {
        let src = "struct S { stripes: Box<[Mutex<u32>]> }\n\
                   fn lock_counted(m: &Mutex<u32>, c: &u32) -> u32 { 0 }\n\
                   impl S { fn f(&self) { let g = lock_counted(&self.stripes[3], &0); \
                   let h = self.stripes[4].lock().expect(\"poisoned in fixture\"); touch(g, h); } }\n";
        let cfg = Config {
            lock_classes: vec![(
                "S.stripes".to_string(),
                "ascending stripe order".to_string(),
            )],
            ..Config::default()
        };
        let (out, an) = run_with(&[("a.rs", src)], &cfg);
        assert!(out.is_empty(), "{out:?}");
        assert!(an.seen.contains("S.stripes"), "{:?}", an.seen);
    }

    #[test]
    fn guard_returning_accessor_propagates_to_callers() {
        let src = "struct W { state: Mutex<u32> }\n\
                   struct S { w: W, a: Mutex<u32> }\n\
                   impl W { fn lock(&self) -> u32 { self.state.lock().unwrap_or_else(|p| p.into_inner()) } }\n\
                   impl S { fn f(&self) { let g = self.a.lock().expect(\"poisoned in fixture\"); \
                   let st = self.w.lock(); touch(g, st); } }\n";
        let (out, an) = run(src);
        assert!(out.is_empty(), "{out:?}");
        let edges = an.graph["edges"].as_array().expect("edges array present");
        assert!(
            edges
                .iter()
                .any(|e| e["from"].as_str() == Some("S.a") && e["to"].as_str() == Some("W.state")),
            "{}",
            an.graph.to_string()
        );
    }

    #[test]
    fn explicit_drop_ends_the_held_range() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
                   impl S { fn f(&self) { let g = self.a.lock().expect(\"poisoned in fixture\"); \
                   touch(g); drop(g); \
                   let h = self.b.lock().expect(\"poisoned in fixture\"); touch(h); } }\n";
        let (out, an) = run(src);
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(an.graph["edges"].as_array().map(|a| a.len()), Some(0));
    }

    #[test]
    fn inline_hatch_silences_io_and_marks_usage() {
        let src = "struct S { a: Mutex<u32> }\n\
                   impl S { fn f(&self) { let g = self.a.lock().expect(\"poisoned in fixture\"); \
                   self.read_samples(g); // lint: allow(locks-io): warm path measured, guard must cover\n\
                   } }\n";
        let files = vec![SourceFile::parse(
            "a.rs".to_string(),
            None,
            FileKind::Lib,
            src,
        )];
        let syns: Vec<Syntax> = files.iter().map(|f| Syntax::build(&f.lexed)).collect();
        let graph = CallGraph::build(&files, &syns);
        let mut out = Vec::new();
        check(&files, &syns, &graph, &Config::default(), &mut out);
        assert!(out.is_empty(), "{out:?}");
        let hatch_line = files[0].allows[0].effective_line;
        assert!(files[0].allow_used(RULE_IO, hatch_line));
    }
}
