//! Determinism rule: the crates whose behaviour must be a pure function
//! of `(config, seed)` — the cache core, samplers, baselines, and the
//! simulator — may not reach for unordered collections or ambient
//! entropy. `HashMap`/`HashSet` iteration order is randomized per
//! instance; `thread_rng` draws from the OS; `Instant`/`SystemTime` read
//! wall clocks. Any of these in a deterministic crate is a seed-escape
//! waiting to happen (DESIGN.md §6, §8).
//!
//! Escape hatches: a `lint.toml` `[determinism] allow` file entry, or an
//! inline `// lint: allow(determinism): <why order cannot escape>`.
//! `use` declarations are exempt — the rule fires on usage sites so one
//! import line does not need its own hatch.
//!
//! The approved dense containers — `icache_core::IdSlab` and
//! `icache_types::IdSet`, id-indexed slabs with ascending-id iteration —
//! are deterministic by construction and never flagged; for `SampleId`
//! keys they are the preferred replacement for both the hash and the
//! BTree collections.

use crate::config::Config;
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};

/// Rule id, as used in findings, hatches, and the JSON report.
pub const RULE: &str = "determinism";

const BANNED: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is randomized per instance; use IdSlab for dense SampleId keys, \
         BTreeMap otherwise, or allowlist with a reason why order cannot escape",
    ),
    (
        "HashSet",
        "iteration order is randomized per instance; use IdSet for dense SampleId keys, \
         BTreeSet otherwise, or allowlist with a reason why order cannot escape",
    ),
    (
        "thread_rng",
        "draws OS entropy; all randomness must flow from the run seed through StdRng",
    ),
    (
        "Instant",
        "reads the wall clock; deterministic crates measure SimTime only",
    ),
    (
        "SystemTime",
        "reads the wall clock; deterministic crates measure SimTime only",
    ),
];

/// Check one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let in_scope = file
        .crate_dir
        .as_ref()
        .is_some_and(|c| cfg.det_crates.contains(c));
    if !in_scope {
        return;
    }
    // A file-level allow entry still scans — usage must be recorded so
    // stale entries get pruned rather than silently shadowing the rule.
    let file_excused = Config::file_allowed(&cfg.det_allow, &file.rel).is_some();
    for (i, tok) in file.lexed.tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        let Some((_, why)) = BANNED.iter().find(|(b, _)| b == name) else {
            continue;
        };
        if file.in_use_decl[i] || file.is_test_line(tok.line) {
            continue;
        }
        if file_excused {
            file.mark_file_allow_used(RULE);
            continue;
        }
        if file.allowed(RULE, tok.line) {
            continue;
        }
        out.push(Finding {
            rule: RULE,
            path: file.rel.clone(),
            line: tok.line,
            col: tok.col,
            message: format!("`{name}` in deterministic crate: {why}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(src: &str, crate_dir: &str) -> Vec<Finding> {
        let f = SourceFile::parse(
            format!("crates/{crate_dir}/src/x.rs"),
            Some(crate_dir.to_string()),
            FileKind::Lib,
            src,
        );
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_hashmap_in_core() {
        let out = check_src(
            "fn f() { let m = std::collections::HashMap::<u8,u8>::new(); }",
            "core",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RULE);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn use_decl_is_exempt_but_usage_is_not() {
        let out = check_src(
            "use std::collections::HashMap;\nstruct S { m: HashMap<u8, u8> }\n",
            "core",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn inline_allow_suppresses() {
        let out = check_src(
            "struct S {\n    m: std::collections::HashMap<u8, u8>, // lint: allow(determinism): keyed lookup only\n}\n",
            "core",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn non_deterministic_crate_is_out_of_scope() {
        assert!(check_src("fn f() { let t = std::time::Instant::now(); }", "bench").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let out = check_src(
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { let m: HashMap<u8,u8> = HashMap::new(); }\n}\n",
            "sim",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn thread_rng_and_clocks_flagged() {
        let out = check_src(
            "fn f() { let r = rand::thread_rng(); let t = std::time::SystemTime::now(); }",
            "sampling",
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn approved_dense_containers_are_clean() {
        // IdSlab/IdSet are the sanctioned dense-id containers: using
        // them in a deterministic crate raises nothing.
        let out = check_src(
            "struct S { m: icache_core::IdSlab<u8>, s: icache_types::IdSet }\n\
             fn f(s: &S) -> usize { s.m.len() + s.s.len() }\n",
            "core",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn file_allowlist_suppresses_whole_file() {
        let f = SourceFile::parse(
            "crates/baselines/src/timing.rs".to_string(),
            Some("baselines".to_string()),
            FileKind::Lib,
            "fn f() { let t = std::time::Instant::now(); }",
        );
        let mut cfg = Config::default();
        cfg.det_allow.push((
            "crates/baselines/src/timing.rs".to_string(),
            "wall-clock timing is the module's purpose".to_string(),
        ));
        let mut out = Vec::new();
        check(&f, &cfg, &mut out);
        assert!(out.is_empty());
    }
}
