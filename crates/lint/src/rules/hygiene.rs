//! Crate hygiene: `#![forbid(unsafe_code)]` must be present in every
//! crate root, `dbg!`/`todo!`/`unimplemented!` may not appear anywhere
//! (tests included — a committed `dbg!` is always debris), and every
//! `lint:` directive must be well-formed with a non-empty reason.

use crate::config::Config;
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Rule id.
pub const RULE: &str = "hygiene";

const BANNED_MACROS: &[&str] = &["dbg", "todo", "unimplemented"];

/// Whether `rel` is a crate-root file that must carry
/// `#![forbid(unsafe_code)]`.
pub fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" || rel == "src/main.rs" {
        return true;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let parts: Vec<&str> = rest.split('/').collect();
        return matches!(
            parts.as_slice(),
            [_, "src", "lib.rs"] | [_, "src", "main.rs"]
        );
    }
    false
}

/// Check one file.
pub fn check(file: &SourceFile, _cfg: &Config, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;

    if is_crate_root(&file.rel) && !has_forbid_unsafe(file) {
        out.push(Finding {
            rule: RULE,
            path: file.rel.clone(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    for (i, tok) in toks.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if !BANNED_MACROS.contains(&name.as_str()) {
            continue;
        }
        let bang = toks
            .get(i + 1)
            .is_some_and(|t| t.kind == TokenKind::Punct('!'));
        if !bang || file.allowed(RULE, tok.line) {
            continue;
        }
        out.push(Finding {
            rule: RULE,
            path: file.rel.clone(),
            line: tok.line,
            col: tok.col,
            message: format!("{name}! must not be committed (tests included)"),
        });
    }

    for (line, problem) in &file.bad_directives {
        out.push(Finding {
            rule: RULE,
            path: file.rel.clone(),
            line: *line,
            col: 1,
            message: problem.clone(),
        });
    }
    for allow in &file.allows {
        if allow.reason.is_empty() {
            out.push(Finding {
                rule: RULE,
                path: file.rel.clone(),
                line: allow.comment_line,
                col: 1,
                message: format!(
                    "`lint: allow({})` escape hatch must carry a reason: \
                     `// lint: allow({}): <why this is sound>`",
                    allow.rule, allow.rule
                ),
            });
        }
        if !crate::KNOWN_RULES.contains(&allow.rule.as_str()) {
            out.push(Finding {
                rule: RULE,
                path: file.rel.clone(),
                line: allow.comment_line,
                col: 1,
                message: format!(
                    "`lint: allow({})` names an unknown rule (known: {})",
                    allow.rule,
                    crate::KNOWN_RULES.join(", ")
                ),
            });
        }
    }
}

fn has_forbid_unsafe(file: &SourceFile) -> bool {
    // Look for the token run `# ! [ forbid ( unsafe_code ) ]`.
    let toks = &file.lexed.tokens;
    let want = [
        TokenKind::Punct('#'),
        TokenKind::Punct('!'),
        TokenKind::Punct('['),
        TokenKind::Ident("forbid".to_string()),
        TokenKind::Punct('('),
        TokenKind::Ident("unsafe_code".to_string()),
        TokenKind::Punct(')'),
        TokenKind::Punct(']'),
    ];
    toks.windows(want.len())
        .any(|w| w.iter().zip(want.iter()).all(|(t, k)| &t.kind == k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn check_at(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel.to_string(), None, FileKind::Lib, src);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn missing_forbid_flagged_on_crate_roots_only() {
        assert_eq!(check_at("crates/x/src/lib.rs", "pub fn f() {}").len(), 1);
        assert!(check_at("crates/x/src/other.rs", "pub fn f() {}").is_empty());
        assert!(check_at(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )
        .is_empty());
    }

    #[test]
    fn dbg_todo_unimplemented_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { dbg!(1); }\n}\nfn f() { todo!() }\n";
        let out = check_at("crates/x/src/other.rs", src);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn reasonless_hatch_flagged() {
        let out = check_at(
            "crates/x/src/other.rs",
            "fn f() { g(); } // lint: allow(panic)\n",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("reason"));
    }

    #[test]
    fn unknown_rule_in_hatch_flagged() {
        let out = check_at(
            "crates/x/src/other.rs",
            "fn f() {} // lint: allow(speed): zoom\n",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unknown rule"));
    }

    #[test]
    fn ident_named_todo_without_bang_is_fine() {
        assert!(check_at("crates/x/src/other.rs", "let todo = 1; let x = todo + 1;").is_empty());
    }
}
