//! Stale-suppression detection: every escape valve must still be
//! earning its keep. An inline `// lint: allow(rule)` hatch that no
//! longer matches a would-be finding, or a `lint.toml` allow entry
//! (determinism/panic file allows, `[locks]` io-exemptions and
//! self-nesting classes) that suppresses nothing, is itself a finding —
//! suppressions rot into blind spots otherwise.
//!
//! Must run *after* every other rule: usage is recorded on the side by
//! [`SourceFile::allowed`] and friends as the rules consult their
//! hatches.

use crate::config::Config;
use crate::diagnostics::Finding;
use crate::rules::locks::Analysis;
use crate::source::SourceFile;

/// Rule id. Deliberately absent from [`crate::KNOWN_RULES`]: a hatch
/// for the stale-hatch rule would be self-defeating.
pub const RULE: &str = "stale-allow";

/// Flag inline hatches and config allow entries that suppressed nothing
/// this run.
pub fn check(files: &[SourceFile], cfg: &Config, locks: &Analysis, out: &mut Vec<Finding>) {
    for file in files {
        for a in &file.allows {
            if !crate::KNOWN_RULES.contains(&a.rule.as_str()) {
                continue; // hygiene already flags unknown-rule hatches
            }
            if file.allow_used(&a.rule, a.effective_line) {
                continue;
            }
            out.push(Finding {
                rule: RULE,
                path: file.rel.clone(),
                line: a.comment_line,
                col: 1,
                message: format!(
                    "`lint: allow({})` hatch suppresses nothing — the finding it \
                     excused is gone; remove the hatch",
                    a.rule
                ),
            });
        }
    }

    let mut config_entry = |entry: &str, detail: String| {
        out.push(Finding {
            rule: RULE,
            path: "lint.toml".to_string(),
            line: 0,
            col: 0,
            message: format!("stale allow entry `{entry}`: {detail}"),
        });
    };
    for (list, rule) in [(&cfg.det_allow, "determinism"), (&cfg.panic_allow, "panic")] {
        for (path, _) in list {
            let used = files
                .iter()
                .any(|f| f.rel == *path && f.file_allow_used(rule));
            if !used {
                config_entry(
                    path,
                    format!("the [{rule}] file allow no longer suppresses any finding — prune it"),
                );
            }
        }
    }
    for (lock, _) in &cfg.lock_io_exempt {
        if !locks.io_exempt_used.contains(lock) {
            config_entry(
                lock,
                "the [locks] io_exempt entry matched no blocking call under this lock — prune it"
                    .to_string(),
            );
        }
    }
    for (lock, _) in &cfg.lock_classes {
        if !locks.seen.contains(lock) {
            config_entry(
                lock,
                "the [locks] classes entry names a lock never seen at any acquisition site"
                    .to_string(),
            );
        }
    }
}
