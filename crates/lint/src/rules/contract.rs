//! Observability contract: every metric name the code passes to the
//! `icache-obs` API (`inc`/`add`/`set_gauge`/`observe`) must appear in
//! the DESIGN.md §7 metrics table, and every documented name must be
//! emitted somewhere — drift in either direction fails the build.
//! Trace-event names get the same treatment: the `=> "name"` arms of
//! `TraceEvent::name()` are diffed against the §7 trace-events table.
//!
//! Dynamic names are covered two ways:
//! - `format!("multijob.job{}.benefit", k)` passed directly to the API
//!   is read as the pattern `multijob.job{*}.benefit`;
//! - names assembled elsewhere (e.g. per-node counter keys built once in
//!   a constructor) are declared at the construction site with
//!   `// lint: metric("dist.node{*}.local_hits")`.
//!
//! Doc-side names may use `{i}`-style wildcards (normalized to `{*}`)
//! and `{a,b,c}` alternation (expanded).

use crate::config::Config;
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// Rule id.
pub const RULE: &str = "contract";

const OBS_METHODS: &[&str] = &["inc", "add", "set_gauge", "observe"];

/// A metric or event name: literal, or a pattern with `{*}` holes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Name(pub String);

impl Name {
    fn is_pattern(&self) -> bool {
        self.0.contains("{*}")
    }

    /// Whether this (possibly pattern) name covers `literal`. A `{*}`
    /// hole matches one or more characters without crossing a `.`
    /// segment boundary.
    fn matches(&self, literal: &str) -> bool {
        if !self.is_pattern() {
            return self.0 == literal;
        }
        let parts: Vec<&str> = self.0.split("{*}").collect();
        let mut rest = literal;
        for (i, part) in parts.iter().enumerate() {
            if i == 0 {
                let Some(r) = rest.strip_prefix(part) else {
                    return false;
                };
                rest = r;
                continue;
            }
            // The hole before `part`: consume 1+ non-dot chars, then
            // `part` must follow. Find the earliest viable split.
            let mut consumed = 0usize;
            let mut found = false;
            let chars: Vec<char> = rest.chars().collect();
            while consumed < chars.len() && chars[consumed] != '.' {
                consumed += 1;
                let tail: String = chars[consumed..].iter().collect();
                if tail.starts_with(part) && consumed >= 1 {
                    rest = &rest[rest.len() - tail.len() + part.len()..];
                    // Re-borrow: compute remaining after part.
                    found = true;
                    break;
                }
            }
            if !found {
                return false;
            }
        }
        // Full consumption: for the last part, `rest` must now be empty
        // unless the pattern ends with a hole (it never does here).
        rest.is_empty() || parts.last().is_some_and(|p| p.is_empty())
    }
}

/// One side of the contract: names plus where they were seen.
#[derive(Debug, Default)]
pub struct NameSet {
    entries: BTreeMap<Name, (String, u32)>,
}

impl NameSet {
    fn insert(&mut self, name: Name, path: &str, line: u32) {
        self.entries
            .entry(name)
            .or_insert_with(|| (path.to_string(), line));
    }

    fn covers(&self, other: &Name) -> bool {
        self.entries.keys().any(|n| {
            n == other || (!other.is_pattern() && n.matches(&other.0)) || {
                // A doc literal is covered by a code pattern too.
                !n.is_pattern() && other.matches(&n.0)
            }
        })
    }

    fn iter(&self) -> impl Iterator<Item = (&Name, &(String, u32))> {
        self.entries.iter()
    }
}

/// Extract metric names emitted by `file` (literal obs calls, inline
/// `format!` patterns, and `lint: metric` declarations).
pub fn code_metrics(file: &SourceFile, out: &mut NameSet) {
    if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Punct('.') {
            continue;
        }
        let Some(TokenKind::Ident(method)) = toks.get(i + 1).map(|t| &t.kind) else {
            continue;
        };
        if !OBS_METHODS.contains(&method.as_str()) {
            continue;
        }
        if toks.get(i + 2).map(|t| &t.kind) != Some(&TokenKind::Punct('(')) {
            continue;
        }
        let tok = &toks[i + 1];
        if file.is_test_line(tok.line) {
            continue;
        }
        match toks.get(i + 3).map(|t| &t.kind) {
            Some(TokenKind::StrLit(name)) => {
                out.insert(Name(name.clone()), &file.rel, tok.line);
            }
            Some(TokenKind::Punct('&')) | Some(TokenKind::Ident(_)) => {
                // `&format!("…", args)` or `format!("…", args)`.
                let at = if toks.get(i + 3).map(|t| &t.kind) == Some(&TokenKind::Punct('&')) {
                    i + 4
                } else {
                    i + 3
                };
                let is_format = matches!(
                    toks.get(at).map(|t| &t.kind),
                    Some(TokenKind::Ident(id)) if id == "format"
                ) && toks.get(at + 1).map(|t| &t.kind)
                    == Some(&TokenKind::Punct('!'))
                    && toks.get(at + 2).map(|t| &t.kind) == Some(&TokenKind::Punct('('));
                if is_format {
                    if let Some(TokenKind::StrLit(fstr)) = toks.get(at + 3).map(|t| &t.kind) {
                        out.insert(Name(normalize_holes(fstr)), &file.rel, tok.line);
                    }
                }
            }
            _ => {}
        }
    }
    for decl in &file.metric_decls {
        out.insert(Name(normalize_holes(&decl.name)), &file.rel, decl.line);
    }
}

/// Extract trace-event names from the configured event-source file: the
/// string literal directly following each `=>` outside test code.
pub fn code_events(file: &SourceFile, out: &mut NameSet) {
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        let arrow = toks[i].kind == TokenKind::Punct('=')
            && toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::Punct('>'));
        if !arrow {
            continue;
        }
        if let Some(TokenKind::StrLit(name)) = toks.get(i + 2).map(|t| &t.kind) {
            let line = toks[i + 2].line;
            if !file.is_test_line(line) {
                out.insert(Name(name.clone()), &file.rel, line);
            }
        }
    }
}

/// Replace every `{…}` hole (named, positional, or empty) with `{*}`.
fn normalize_holes(s: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push_str("{*}");
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Expand `{a,b,c}` alternation groups; normalize remaining holes.
fn expand_doc_name(raw: &str) -> Vec<Name> {
    if let Some(open) = raw.find('{') {
        if let Some(close_rel) = raw[open..].find('}') {
            let close = open + close_rel;
            let body = &raw[open + 1..close];
            if body.contains(',') {
                let mut out = Vec::new();
                for alt in body.split(',') {
                    let candidate = format!("{}{}{}", &raw[..open], alt.trim(), &raw[close + 1..]);
                    out.extend(expand_doc_name(&candidate));
                }
                return out;
            }
        }
    }
    vec![Name(normalize_holes(raw))]
}

/// Parse one documentation table section: all backticked names in the
/// first column of the markdown table under the heading `section`,
/// stopping at the next heading.
pub fn doc_names(doc: &str, doc_path: &str, section: &str, out: &mut NameSet) -> bool {
    let mut in_section = false;
    let mut found = false;
    for (n, line) in doc.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            in_section = trimmed.trim_start_matches('#').trim() == section;
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let Some(first_cell) = trimmed.trim_start_matches('|').split('|').next() else {
            continue;
        };
        if first_cell.contains("---") || first_cell.trim() == "name" {
            continue;
        }
        found = true;
        // Every `backticked` span in the cell is a name (cells may hold
        // several, e.g. "`a` / `b` / `c`").
        let mut rest = first_cell;
        while let Some(start) = rest.find('`') {
            let Some(len) = rest[start + 1..].find('`') else {
                break;
            };
            let raw = &rest[start + 1..start + 1 + len];
            for name in expand_doc_name(raw) {
                out.insert(name, doc_path, n as u32 + 1);
            }
            rest = &rest[start + 1 + len + 1..];
        }
    }
    found
}

/// Diff two name sets in both directions.
pub fn diff(
    code: &NameSet,
    doc: &NameSet,
    what: &str,
    doc_path: &str,
    section: &str,
    out: &mut Vec<Finding>,
) {
    for (name, (path, line)) in code.iter() {
        if !doc.covers(name) {
            out.push(Finding {
                rule: RULE,
                path: path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "{what} `{}` is emitted here but not documented in {doc_path} §7 \
                     table \"{section}\"",
                    name.0
                ),
            });
        }
    }
    for (name, (path, line)) in doc.iter() {
        if !code.covers(name) {
            out.push(Finding {
                rule: RULE,
                path: path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "{what} `{}` is documented here but never emitted by the code",
                    name.0
                ),
            });
        }
    }
}

/// Run the whole contract check over parsed workspace files plus the
/// design document text.
pub fn check(
    files: &[SourceFile],
    design_text: Option<&str>,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let Some(doc) = design_text else {
        out.push(Finding {
            rule: RULE,
            path: cfg.design.clone(),
            line: 0,
            col: 0,
            message: format!("design document `{}` not found or unreadable", cfg.design),
        });
        return;
    };

    let mut code_m = NameSet::default();
    let mut code_e = NameSet::default();
    for f in files {
        code_metrics(f, &mut code_m);
        if f.rel == cfg.event_source {
            code_events(f, &mut code_e);
        }
    }

    let mut doc_m = NameSet::default();
    if !doc_names(doc, &cfg.design, "Metrics", &mut doc_m) {
        out.push(Finding {
            rule: RULE,
            path: cfg.design.clone(),
            line: 0,
            col: 0,
            message: "no `### Metrics` table found in the design document".to_string(),
        });
    } else {
        diff(&code_m, &doc_m, "metric", &cfg.design, "Metrics", out);
    }

    let mut doc_e = NameSet::default();
    if !doc_names(doc, &cfg.design, "Trace events", &mut doc_e) {
        out.push(Finding {
            rule: RULE,
            path: cfg.design.clone(),
            line: 0,
            col: 0,
            message: "no `### Trace events` table found in the design document".to_string(),
        });
    } else {
        diff(
            &code_e,
            &doc_e,
            "trace event",
            &cfg.design,
            "Trace events",
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_matching_respects_segments() {
        let p = Name("dist.node{*}.local_hits".to_string());
        assert!(p.matches("dist.node3.local_hits"));
        assert!(p.matches("dist.node12.local_hits"));
        assert!(!p.matches("dist.node3.remote_hits"));
        assert!(!p.matches("dist.node.extra.local_hits"));
        assert!(!p.matches("dist.node.local_hits"), "hole needs 1+ chars");
    }

    #[test]
    fn normalize_and_expand() {
        assert_eq!(
            normalize_holes("multijob.job{}.benefit"),
            "multijob.job{*}.benefit"
        );
        assert_eq!(normalize_holes("dist.node{i}.x"), "dist.node{*}.x");
        let names: Vec<String> = expand_doc_name("replay.{h,l,pm}_hits")
            .into_iter()
            .map(|n| n.0)
            .collect();
        assert_eq!(
            names,
            vec!["replay.h_hits", "replay.l_hits", "replay.pm_hits"]
        );
    }

    #[test]
    fn doc_table_extraction_handles_multi_name_cells() {
        let doc = "\
## 7. Observability

### Metrics

| name | type | meaning |
|---|---|---|
| `cache.h_hits` / `cache.l_hits` | counter | hits |
| `replay.accesses`, `replay.{h,l}_hits` | counter | replay |

### Trace events

| name | meaning |
|---|---|
| `h_hit` | hit |
";
        let mut set = NameSet::default();
        assert!(doc_names(doc, "D.md", "Metrics", &mut set));
        let names: Vec<String> = set.iter().map(|(n, _)| n.0.clone()).collect();
        assert_eq!(
            names,
            vec![
                "cache.h_hits",
                "cache.l_hits",
                "replay.accesses",
                "replay.h_hits",
                "replay.l_hits"
            ]
        );
        let mut ev = NameSet::default();
        assert!(doc_names(doc, "D.md", "Trace events", &mut ev));
        assert_eq!(ev.iter().count(), 1);
    }

    #[test]
    fn code_extraction_literals_and_format() {
        use crate::source::{FileKind, SourceFile};
        let src = r#"
fn f(obs: &Obs, k: u64) {
    obs.inc("cache.h_hits");
    obs.add("cache.bytes", 10);
    obs.set_gauge(&format!("multijob.job{}.benefit", k), 1.0);
    obs.observe("cache.fetch", d);
    table.observe(SampleId(7)); // non-string arg: not a metric
}
// lint: metric("dist.node{*}.local_hits")
"#;
        let file = SourceFile::parse("x.rs".into(), None, FileKind::Lib, src);
        let mut set = NameSet::default();
        code_metrics(&file, &mut set);
        let names: Vec<String> = set.iter().map(|(n, _)| n.0.clone()).collect();
        assert_eq!(
            names,
            vec![
                "cache.bytes",
                "cache.fetch",
                "cache.h_hits",
                "dist.node{*}.local_hits",
                "multijob.job{*}.benefit"
            ]
        );
    }

    #[test]
    fn event_extraction_from_match_arms() {
        use crate::source::{FileKind, SourceFile};
        let src = "impl E {\n fn name(&self) -> &str {\n  match self {\n   E::A { .. } => \"a_event\",\n   E::B { .. } => \"b_event\",\n  }\n }\n}\n#[cfg(test)]\nmod tests { fn t() { let x = match 1 { _ => \"not_an_event\" }; } }\n";
        let file = SourceFile::parse("x.rs".into(), None, FileKind::Lib, src);
        let mut set = NameSet::default();
        code_events(&file, &mut set);
        let names: Vec<String> = set.iter().map(|(n, _)| n.0.clone()).collect();
        assert_eq!(names, vec!["a_event", "b_event"]);
    }

    #[test]
    fn diff_reports_both_directions() {
        let mut code = NameSet::default();
        code.insert(Name("a.emitted".into()), "x.rs", 3);
        code.insert(Name("a.shared".into()), "x.rs", 4);
        let mut doc = NameSet::default();
        doc.insert(Name("a.shared".into()), "D.md", 10);
        doc.insert(Name("a.ghost".into()), "D.md", 11);
        let mut out = Vec::new();
        diff(&code, &doc, "metric", "D.md", "Metrics", &mut out);
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .any(|f| f.message.contains("a.emitted") && f.message.contains("not documented")));
        assert!(out
            .iter()
            .any(|f| f.message.contains("a.ghost") && f.message.contains("never emitted")));
    }

    #[test]
    fn pattern_on_one_side_covers_literals_on_the_other() {
        let mut code = NameSet::default();
        code.insert(Name("dist.node{*}.local_hits".into()), "x.rs", 1);
        let mut doc = NameSet::default();
        doc.insert(Name("dist.node{*}.local_hits".into()), "D.md", 1);
        let mut out = Vec::new();
        diff(&code, &doc, "metric", "D.md", "Metrics", &mut out);
        assert!(out.is_empty());
    }
}
