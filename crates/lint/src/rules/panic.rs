//! Panic policy: library code must not be able to take the process down
//! on a recoverable condition. `unwrap()`, `panic!`, and `unreachable!`
//! are forbidden in library targets; `expect()` is allowed **only** when
//! its argument is a string literal long enough to state the invariant
//! it relies on — the message *is* the mandatory reason. Tests, benches,
//! examples, and binaries are exempt (a driver binary aborting on bad
//! input is fine; a library crate doing so is not).
//!
//! Escape hatch: `// lint: allow(panic): <reason>` on the offending
//! line, or a `[panic] allow` file entry in `lint.toml`.

use crate::config::Config;
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};

/// Rule id.
pub const RULE: &str = "panic";

/// Check one file.
pub fn check(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    // A file-level allow entry still scans — usage must be recorded so
    // stale entries get pruned rather than silently shadowing the rule.
    let file_excused = Config::file_allowed(&cfg.panic_allow, &file.rel).is_some();
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        let tok = &toks[i];
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        if file.is_test_line(tok.line) {
            continue;
        }
        let next_is = |k: usize, p: char| {
            toks.get(i + k)
                .is_some_and(|t| t.kind == TokenKind::Punct(p))
        };
        let prev_is_dot = i > 0 && toks[i - 1].kind == TokenKind::Punct('.');
        // Decide whether this token is a violation *before* consulting
        // any excuse: `allowed()` records hatch usage, so asking it for
        // non-violations would mark every hatch on a busy line as used
        // and blind the stale-suppression rule.
        let message: Option<String> = match name.as_str() {
            "unwrap" if prev_is_dot && next_is(1, '(') && next_is(2, ')') => Some(
                "unwrap() in library code: state the invariant with expect(\"…\") \
                 or propagate the error"
                    .to_string(),
            ),
            "panic" | "unreachable" if next_is(1, '!') => Some(format!(
                "{name}! in library code: return an error, or add \
                 `// lint: allow(panic): <reason>` if the branch is provably dead"
            )),
            "expect" if prev_is_dot && next_is(1, '(') => {
                let ok = match toks.get(i + 2).map(|t| &t.kind) {
                    Some(TokenKind::StrLit(msg)) => msg.len() >= cfg.min_expect_message,
                    // A computed message built in place still documents
                    // the invariant.
                    Some(TokenKind::Ident(id)) => id == "format",
                    Some(TokenKind::Punct('&')) => matches!(
                        toks.get(i + 3).map(|t| &t.kind),
                        Some(TokenKind::Ident(id)) if id == "format"
                    ),
                    _ => false,
                };
                (!ok).then(|| {
                    format!(
                        "expect() needs an invariant message of at least {} characters \
                         (the message is the reason the panic cannot fire)",
                        cfg.min_expect_message
                    )
                })
            }
            _ => None,
        };
        let Some(message) = message else { continue };
        if file_excused {
            file.mark_file_allow_used(RULE);
            continue;
        }
        if file.allowed(RULE, tok.line) {
            continue;
        }
        out.push(Finding {
            rule: RULE,
            path: file.rel.clone(),
            line: tok.line,
            col: tok.col,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_src(src: &str, kind: FileKind) -> Vec<Finding> {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs".to_string(),
            Some("x".to_string()),
            kind,
            src,
        );
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_in_lib() {
        let out = check_src("fn f(x: Option<u8>) -> u8 { x.unwrap() }", FileKind::Lib);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("unwrap"));
    }

    #[test]
    fn unwrap_or_else_is_fine() {
        assert!(check_src(
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }",
            FileKind::Lib
        )
        .is_empty());
        assert!(check_src(
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn expect_with_invariant_message_is_fine() {
        assert!(check_src(
            "fn f(x: Option<u8>) -> u8 { x.expect(\"heap and map agree on membership\") }",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn short_expect_message_flagged() {
        let out = check_src(
            "fn f(x: Option<u8>) -> u8 { x.expect(\"ok\") }",
            FileKind::Lib,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("invariant message"));
    }

    #[test]
    fn computed_format_message_is_fine() {
        assert!(check_src(
            "fn f(x: Option<u8>, id: u8) -> u8 { x.expect(&format!(\"sample {id} must be resident\")) }",
            FileKind::Lib
        )
        .is_empty());
    }

    #[test]
    fn panic_and_unreachable_flagged() {
        let out = check_src(
            "fn f(b: bool) { if b { panic!(\"no\"); } else { unreachable!() } }",
            FileKind::Lib,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn bins_tests_benches_exempt() {
        for kind in [
            FileKind::Bin,
            FileKind::Test,
            FileKind::Bench,
            FileKind::Example,
        ] {
            assert!(check_src("fn f(x: Option<u8>) -> u8 { x.unwrap() }", kind).is_empty());
        }
    }

    #[test]
    fn test_module_inside_lib_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(check_src(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn allow_hatch_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint: allow(panic): caller checked is_some above\n}\n";
        assert!(check_src(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn struct_update_syntax_not_confused() {
        // `..Default::default()` puts two dots before an ident; ensure
        // no false `.unwrap` style matches on unrelated tokens.
        assert!(check_src(
            "fn f() -> S { S { a: 1, ..Default::default() } }",
            FileKind::Lib
        )
        .is_empty());
    }
}
