//! Intra-workspace call graph over the syntactic model.
//!
//! Resolution is deliberately *under-approximating*: a call edge is
//! recorded only when the target is unambiguous under suffix-based name
//! resolution (no type inference). The supported forms:
//!
//! - `self.m(…)` — a method of the enclosing `impl` type;
//! - `self.field.m(…)` — resolved through the field's declared type
//!   base name (e.g. `h_heap: ShardedHeap<…>` → `ShardedHeap::m`);
//! - `Type::m(…)` / `Self::m(…)` — methods of that type;
//! - `free(…)` — free functions, preferring the same file, falling back
//!   to a workspace-unique name;
//! - method calls on any other receiver — never resolved. Common std
//!   method names (`.map`, `.load`, `.insert`, `.collect`) routinely
//!   collide with workspace functions, and a wrong edge is worse than a
//!   missing one.
//!
//! An ambiguous or unknown name produces *no* edge: a spurious edge
//! could fabricate a lock-order cycle, while a missing edge merely
//! loses coverage (the trade the lock rules want).

use crate::lexer::TokenKind;
use crate::source::{FileKind, SourceFile};
use crate::syntax::{is_keyword, Syntax};
use std::collections::BTreeMap;

/// A function known to the workspace, addressed by global id (index
/// into [`CallGraph::fns`]).
#[derive(Debug, Clone)]
pub struct FnKey {
    /// Index of the file in the scanned file list.
    pub file: usize,
    /// Index into that file's [`Syntax::fns`].
    pub syn_idx: usize,
    /// Function name.
    pub name: String,
    /// Enclosing impl type, when any.
    pub impl_type: Option<String>,
}

impl FnKey {
    /// Human-readable name (`Type::method` or `free_fn`).
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee name.
    pub tok: usize,
    /// Position of the callee name.
    pub line: u32,
    /// Column of the callee name.
    pub col: u32,
    /// Callee name as written.
    pub name: String,
    /// Resolved global fn id, when unambiguous.
    pub target: Option<usize>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function item, across all files.
    pub fns: Vec<FnKey>,
    /// Per-function call sites (indexed by global fn id). Functions in
    /// test code or non-Lib/Bin files have empty call lists — they are
    /// registered only so name resolution sees the true ambiguity.
    pub calls: Vec<Vec<Call>>,
}

impl CallGraph {
    /// Build the graph over all files. `syntaxes[i]` must be the model
    /// of `files[i]`.
    pub fn build(files: &[SourceFile], syntaxes: &[Syntax]) -> CallGraph {
        let mut g = CallGraph::default();
        // Registry pass: every fn in every file participates in name
        // resolution, even test helpers (ambiguity must be honest).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, syn) in syntaxes.iter().enumerate() {
            for (si, f) in syn.fns.iter().enumerate() {
                g.fns.push(FnKey {
                    file: fi,
                    syn_idx: si,
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                });
            }
        }
        for (id, k) in g.fns.iter().enumerate() {
            by_name.entry(&k.name).or_default().push(id);
            match &k.impl_type {
                Some(t) => by_type_name
                    .entry((t.as_str(), k.name.as_str()))
                    .or_default()
                    .push(id),
                None => free_by_name.entry(&k.name).or_default().push(id),
            }
        }

        // Extraction pass: call sites for analyzable functions only.
        g.calls = vec![Vec::new(); g.fns.len()];
        for (id, key) in g.fns.iter().enumerate() {
            let file = &files[key.file];
            if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
                continue;
            }
            let syn = &syntaxes[key.file];
            let item = &syn.fns[key.syn_idx];
            if file.is_test_line(item.sig_line) {
                continue;
            }
            let Some((open, close)) = item.body else {
                continue;
            };
            let toks = &file.lexed.tokens;
            for p in open + 1..close {
                let TokenKind::Ident(name) = &toks[p].kind else {
                    continue;
                };
                if toks.get(p + 1).map(|t| &t.kind) != Some(&TokenKind::Punct('(')) {
                    continue;
                }
                if is_keyword(name) {
                    continue;
                }
                // `fn name(` is a nested definition, not a call.
                if matches!(toks.get(p.wrapping_sub(1)).map(|t| &t.kind),
                            Some(TokenKind::Ident(k)) if k == "fn")
                {
                    continue;
                }
                let target = resolve(
                    toks,
                    p,
                    name,
                    key,
                    syn,
                    &by_name,
                    &by_type_name,
                    &free_by_name,
                    &g.fns,
                );
                g.calls[id].push(Call {
                    tok: p,
                    line: toks[p].line,
                    col: toks[p].col,
                    name: name.clone(),
                    target,
                });
            }
        }
        g
    }

    /// Global fn ids whose body contains token `tok` of file `file`
    /// (innermost).
    pub fn fn_at(&self, syntaxes: &[Syntax], file: usize, tok: usize) -> Option<usize> {
        let si = syntaxes[file].enclosing_fn(tok)?;
        self.fns
            .iter()
            .position(|k| k.file == file && k.syn_idx == si)
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve(
    toks: &[crate::lexer::Token],
    p: usize,
    name: &str,
    caller: &FnKey,
    syn: &Syntax,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_type_name: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    fns: &[FnKey],
) -> Option<usize> {
    let kind_at = |i: usize| toks.get(i).map(|t| &t.kind);
    let ident_at = |i: usize| match kind_at(i) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let unique = |cands: Option<&Vec<usize>>| match cands {
        Some(v) if v.len() == 1 => Some(v[0]),
        _ => None,
    };

    if p >= 1 && kind_at(p - 1) == Some(&TokenKind::Punct('.')) {
        // Method call.
        if ident_at(p.wrapping_sub(2)) == Some("self") {
            // `self.name(…)`: the enclosing impl type only.
            if let Some(t) = &caller.impl_type {
                return unique(by_type_name.get(&(t.as_str(), name)));
            }
            return None;
        }
        if p >= 4
            && kind_at(p - 3) == Some(&TokenKind::Punct('.'))
            && ident_at(p - 4) == Some("self")
        {
            // `self.field.name(…)`: field-type hint only.
            if let (Some(field), Some(t)) = (ident_at(p - 2), &caller.impl_type) {
                if let Some(base) = syn
                    .structs
                    .get(t.as_str())
                    .and_then(|s| s.fields.iter().find(|f| f.name == field))
                    .and_then(|f| f.base_type())
                {
                    return unique(by_type_name.get(&(base, name)));
                }
            }
            return None;
        }
        // Unknown receiver: never resolved (std method names collide).
        return None;
    }

    if p >= 3
        && kind_at(p - 1) == Some(&TokenKind::Punct(':'))
        && kind_at(p - 2) == Some(&TokenKind::Punct(':'))
    {
        // `Path::name(…)`: the segment just before the `::`, only.
        if let Some(seg) = ident_at(p.wrapping_sub(3)) {
            let ty = if seg == "Self" {
                caller.impl_type.as_deref().unwrap_or(seg)
            } else {
                seg
            };
            return unique(by_type_name.get(&(ty, name)));
        }
        return None;
    }

    // Free call: same-file free fn first, then workspace-unique free fn,
    // then workspace-unique any-fn.
    if let Some(cands) = free_by_name.get(name) {
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| fns[id].file == caller.file)
            .collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        if cands.len() == 1 {
            return Some(cands[0]);
        }
    }
    unique(by_name.get(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn build(srcs: &[&str]) -> (Vec<SourceFile>, Vec<Syntax>, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| SourceFile::parse(format!("f{i}.rs"), None, FileKind::Lib, s))
            .collect();
        let syns: Vec<Syntax> = files.iter().map(|f| Syntax::build(&f.lexed)).collect();
        let g = CallGraph::build(&files, &syns);
        (files, syns, g)
    }

    fn calls_of<'g>(g: &'g CallGraph, name: &str) -> &'g [Call] {
        let id = g
            .fns
            .iter()
            .position(|k| k.name == name)
            .expect("fn present in this fixture");
        &g.calls[id]
    }

    #[test]
    fn self_method_resolves_to_same_impl() {
        let (_, _, g) = build(&["struct A; impl A { fn f(&self) { self.g(); } fn g(&self) {} }"]);
        let c = calls_of(&g, "f");
        let t = c[0].target.expect("self.g resolves within impl A");
        assert_eq!(g.fns[t].display(), "A::g");
    }

    #[test]
    fn field_type_hint_resolves_across_types() {
        let src = "struct H; impl H { fn insert(&self) {} }\n\
                   struct M { h: H }\n\
                   impl M { fn f(&self) { self.h.insert(); } }";
        let (_, _, g) = build(&[src]);
        let c = calls_of(&g, "f");
        let t = c[0].target.expect("self.h.insert resolves via field type");
        assert_eq!(g.fns[t].display(), "H::insert");
    }

    #[test]
    fn ambiguous_names_resolve_to_nothing() {
        let src = "struct A; impl A { fn m(&self) {} }\n\
                   struct B; impl B { fn m(&self) {} }\n\
                   fn f(x: &A) { x.m(); }";
        let (_, _, g) = build(&[src]);
        let c = calls_of(&g, "f");
        assert!(c[0].target.is_none(), "x.m is ambiguous between A and B");
    }

    #[test]
    fn qualified_path_resolves() {
        let src = "struct A; impl A { fn new() {} }\nfn f() { A::new(); Self_unused(); }\nfn Self_unused() {}";
        let (_, _, g) = build(&[src]);
        let c = calls_of(&g, "f");
        let t = c[0].target.expect("A::new resolves");
        assert_eq!(g.fns[t].display(), "A::new");
    }

    #[test]
    fn unique_name_resolves_through_locals() {
        let src = "fn helper_once() {}\nfn f() { let h = helper_once; h(); helper_once(); }";
        let (_, _, g) = build(&[src]);
        let c = calls_of(&g, "f");
        // Both `h()` (no workspace fn named h) and `helper_once()`.
        let named: Vec<_> = c.iter().filter(|c| c.target.is_some()).collect();
        assert_eq!(named.len(), 1);
        assert_eq!(named[0].name, "helper_once");
    }

    #[test]
    fn test_fns_register_but_contribute_no_calls() {
        let src = "fn real() { lockit(); }\nfn lockit() {}\n\
                   #[cfg(test)] mod t { fn lockit() {} }";
        let (_, _, g) = build(&[src]);
        // Ambiguity from the test helper is honest: two `lockit` fns.
        let c = calls_of(&g, "real");
        assert!(c[0].target.is_none());
        // And the test fn body produced no call list of its own.
        let test_id = g
            .fns
            .iter()
            .enumerate()
            .filter(|(_, k)| k.name == "lockit")
            .map(|(i, _)| i)
            .next_back()
            .expect("test lockit registered");
        assert!(g.calls[test_id].is_empty());
    }
}
