//! A lightweight syntactic layer over the token stream: brace matching,
//! item discovery (functions with their enclosing `impl` type, structs
//! with field types, statics), and statement segmentation inside
//! blocks. This is *not* a parser — it is exactly the amount of
//! structure the lock-analysis rules need: which tokens form a function
//! body, which `impl` block it sits in, where the enclosing block of a
//! `let` ends, and where a statement ends.
//!
//! Everything is index-based into [`Lexed::tokens`]; positions come from
//! the tokens themselves.

use crate::lexer::{Lexed, TokenKind};
use std::collections::BTreeMap;

/// A function item: its name, enclosing `impl` target (when any), and
/// body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Base name of the `impl` target type this function sits in
    /// (`impl Trait for Type` records `Type`), `None` for free
    /// functions.
    pub impl_type: Option<String>,
    /// Token index of the `fn` keyword.
    pub sig_tok: usize,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Body token range `(open_brace, close_brace)`, inclusive on both
    /// ends; `None` for bodiless declarations (trait methods).
    pub body: Option<(usize, usize)>,
}

/// One struct field: name and the identifier tokens of its type.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// Identifier tokens appearing in the field's type, in order
    /// (`Box<[Mutex<IdSlab<V>>]>` → `["Box", "Mutex", "IdSlab", "V"]`).
    pub type_idents: Vec<String>,
}

impl FieldItem {
    /// Whether the declared type contains a lock (`Mutex`/`RwLock`).
    pub fn is_lock(&self) -> bool {
        self.type_idents
            .iter()
            .any(|t| t == "Mutex" || t == "RwLock")
    }

    /// The outermost type name, used as a receiver-type hint for method
    /// resolution (`h_heap: ShardedHeap` → `ShardedHeap`).
    pub fn base_type(&self) -> Option<&str> {
        self.type_idents
            .iter()
            .map(String::as_str)
            .find(|t| !matches!(*t, "dyn" | "mut" | "const" | "impl"))
    }
}

/// A struct definition with named fields.
#[derive(Debug, Clone, Default)]
pub struct StructItem {
    /// Named fields in declaration order (tuple structs record none).
    pub fields: Vec<FieldItem>,
}

/// A `static` item.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// The static's name.
    pub name: String,
    /// Whether its type contains `Mutex`/`RwLock`.
    pub is_lock: bool,
}

/// The syntactic model of one file.
#[derive(Debug, Default)]
pub struct Syntax {
    /// All function items in source order.
    pub fns: Vec<FnItem>,
    /// Struct name → definition.
    pub structs: BTreeMap<String, StructItem>,
    /// Static items.
    pub statics: Vec<StaticItem>,
    /// For each token index: the matching brace index when the token is
    /// `{` or `}`, else `usize::MAX`.
    pub brace_match: Vec<usize>,
}

const STMT_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "let", "in", "as", "move", "ref",
    "mut", "break", "continue", "unsafe", "where", "pub", "use", "mod", "impl", "fn", "struct",
    "enum", "trait", "type", "const", "static", "dyn", "await", "async",
];

/// Whether `name` is a Rust keyword that can precede `(` without being
/// a call.
pub fn is_keyword(name: &str) -> bool {
    STMT_KEYWORDS.contains(&name)
}

impl Syntax {
    /// Build the syntactic model for a lexed file.
    pub fn build(lexed: &Lexed) -> Syntax {
        let toks = &lexed.tokens;
        let brace_match = match_braces(lexed);
        let impl_ranges = find_impl_ranges(lexed, &brace_match);
        let mut syn = Syntax {
            fns: Vec::new(),
            structs: BTreeMap::new(),
            statics: Vec::new(),
            brace_match,
        };

        let mut i = 0;
        while i < toks.len() {
            let TokenKind::Ident(name) = &toks[i].kind else {
                i += 1;
                continue;
            };
            match name.as_str() {
                "fn" => {
                    // `fn` in a pointer type is followed by `(`, an item
                    // by its name.
                    let Some(TokenKind::Ident(fn_name)) = toks.get(i + 1).map(|t| &t.kind) else {
                        i += 1;
                        continue;
                    };
                    let body = fn_body(lexed, &syn.brace_match, i);
                    let impl_type = impl_ranges
                        .iter()
                        .filter(|(open, close, _)| *open < i && i < *close)
                        .min_by_key(|(open, close, _)| close - open)
                        .map(|(_, _, ty)| ty.clone());
                    syn.fns.push(FnItem {
                        name: fn_name.clone(),
                        impl_type,
                        sig_tok: i,
                        sig_line: toks[i].line,
                        body,
                    });
                    // Continue *inside* the body too: nested fns are rare
                    // but legal. Skip only the signature.
                    i += 2;
                }
                "struct" => {
                    if let Some((sname, item, next)) = parse_struct(lexed, &syn.brace_match, i) {
                        syn.structs.entry(sname).or_insert(item);
                        i = next;
                    } else {
                        i += 1;
                    }
                }
                "static" => {
                    if let Some(item) = parse_static(lexed, i) {
                        syn.statics.push(item);
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        syn
    }

    /// The function (by index into [`Syntax::fns`]) whose body contains
    /// token `tok`, innermost first.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body.is_some_and(|(o, c)| o < tok && tok < c))
            .min_by_key(|(_, f)| {
                let (o, c) = f.body.unwrap_or((0, usize::MAX));
                c - o
            })
            .map(|(i, _)| i)
    }

    /// The innermost block (`open`, `close` token indices) containing
    /// `tok`, searched within `(outer_open, outer_close)`.
    pub fn enclosing_block(
        &self,
        lexed: &Lexed,
        outer: (usize, usize),
        tok: usize,
    ) -> (usize, usize) {
        let mut best = outer;
        let toks = &lexed.tokens;
        let mut j = outer.0;
        while j < tok {
            if toks[j].kind == TokenKind::Punct('{') {
                let close = self.brace_match.get(j).copied().unwrap_or(usize::MAX);
                if close != usize::MAX && j < tok && tok < close && close - j < best.1 - best.0 {
                    best = (j, close);
                }
            }
            j += 1;
        }
        best
    }

    /// Segment the direct statements of the block `(open, close)`.
    /// Nested balanced groups are opaque; a statement ends at a `;` at
    /// the block's own level, or after a top-level `{…}` group that is
    /// not continued by `else`, `.`, or `?`. Returns `(start, end)`
    /// token ranges, inclusive.
    pub fn statements(&self, lexed: &Lexed, open: usize, close: usize) -> Vec<(usize, usize)> {
        let toks = &lexed.tokens;
        let mut out = Vec::new();
        let mut start = open + 1;
        let mut i = open + 1;
        while i < close {
            match &toks[i].kind {
                TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    let was_brace = toks[i].kind == TokenKind::Punct('{');
                    i = skip_group(lexed, &self.brace_match, i);
                    if was_brace {
                        // A top-level brace group may end the statement
                        // (`if … { }`), unless continued.
                        let cont = matches!(
                            toks.get(i + 1).map(|t| &t.kind),
                            Some(TokenKind::Punct('.'))
                                | Some(TokenKind::Punct('?'))
                                | Some(TokenKind::Punct(';'))
                                | Some(TokenKind::Punct(','))
                        ) || matches!(
                            toks.get(i + 1).map(|t| &t.kind),
                            Some(TokenKind::Ident(k)) if k == "else"
                        );
                        if !cont && i < close {
                            out.push((start, i));
                            start = i + 1;
                        }
                    }
                    i += 1;
                }
                TokenKind::Punct(';') => {
                    out.push((start, i));
                    start = i + 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        if start < close {
            out.push((start, close - 1));
        }
        out
    }
}

/// Compute matching-brace indices for `{`/`}` tokens.
fn match_braces(lexed: &Lexed) -> Vec<usize> {
    let toks = &lexed.tokens;
    let mut map = vec![usize::MAX; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('{') => stack.push(i),
            TokenKind::Punct('}') => {
                if let Some(open) = stack.pop() {
                    map[open] = i;
                    map[i] = open;
                }
            }
            _ => {}
        }
    }
    map
}

/// Skip a balanced group starting at an opening delimiter; returns the
/// index of its closing delimiter (or the last token when unbalanced).
pub fn skip_group(lexed: &Lexed, brace_match: &[usize], open: usize) -> usize {
    let toks = &lexed.tokens;
    if toks[open].kind == TokenKind::Punct('{') {
        let close = brace_match.get(open).copied().unwrap_or(usize::MAX);
        return if close == usize::MAX {
            toks.len() - 1
        } else {
            close
        };
    }
    let (o, c) = match toks[open].kind {
        TokenKind::Punct('(') => ('(', ')'),
        TokenKind::Punct('[') => ('[', ']'),
        _ => return open,
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct(p) if *p == o => depth += 1,
            TokenKind::Punct(p) if *p == c => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len() - 1
}

/// Find `(open_brace, close_brace, target_type)` for every `impl`
/// block. `impl Trait for Type` records `Type`; `impl Type` records
/// `Type`; generics are skipped.
fn find_impl_ranges(lexed: &Lexed, brace_match: &[usize]) -> Vec<(usize, usize, String)> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !matches!(&toks[i].kind, TokenKind::Ident(s) if s == "impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Skip `<…>` generic parameters after `impl`.
        if matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::Punct('<'))) {
            j = skip_angles(lexed, j);
        }
        let (first, after_first) = read_type_path(lexed, j);
        let mut target = first;
        j = after_first;
        if matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::Ident(s)) if s == "for") {
            let (second, after_second) = read_type_path(lexed, j + 1);
            target = second;
            j = after_second;
        }
        // Scan to the impl body `{` (skipping a `where` clause).
        while j < toks.len() && toks[j].kind != TokenKind::Punct('{') {
            j += 1;
        }
        if j < toks.len() {
            let close = brace_match.get(j).copied().unwrap_or(usize::MAX);
            if close != usize::MAX {
                if let Some(ty) = target {
                    out.push((j, close, ty));
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Skip a `<…>` angle-bracket group starting at `open`; returns the
/// index just past the closing `>`.
fn skip_angles(lexed: &Lexed, open: usize) -> usize {
    let toks = &lexed.tokens;
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            TokenKind::Punct('{') | TokenKind::Punct(';') => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Read a type path (`a::b::Type<…>`); returns the base name of its
/// last segment and the index just past the path.
fn read_type_path(lexed: &Lexed, mut i: usize) -> (Option<String>, usize) {
    let toks = &lexed.tokens;
    // Leading `&`/lifetimes/`dyn`/`mut` before the path.
    loop {
        match toks.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct('&')) | Some(TokenKind::Lifetime) => i += 1,
            Some(TokenKind::Ident(s)) if s == "dyn" || s == "mut" => i += 1,
            _ => break,
        }
    }
    let mut last: Option<String> = None;
    while let Some(TokenKind::Ident(seg)) = toks.get(i).map(|t| &t.kind) {
        if is_keyword(seg) {
            break;
        }
        last = Some(seg.clone());
        i += 1;
        if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Punct('<'))) {
            i = skip_angles(lexed, i);
        }
        // `::` continues the path.
        if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Punct(':')))
            && matches!(
                toks.get(i + 1).map(|t| &t.kind),
                Some(TokenKind::Punct(':'))
            )
        {
            i += 2;
        } else {
            break;
        }
    }
    (last, i)
}

/// Locate a function's body braces: the first `{` at paren/bracket
/// depth 0 after the signature, or `None` when the item ends in `;`.
fn fn_body(lexed: &Lexed, brace_match: &[usize], fn_tok: usize) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut depth = 0i32;
    let mut i = fn_tok + 1;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('{') if depth == 0 => {
                let close = brace_match.get(i).copied().unwrap_or(usize::MAX);
                return if close == usize::MAX {
                    None
                } else {
                    Some((i, close))
                };
            }
            TokenKind::Punct(';') if depth == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse `struct Name { field: Type, … }`. Returns the name, the item,
/// and the token index to resume scanning at.
fn parse_struct(
    lexed: &Lexed,
    brace_match: &[usize],
    struct_tok: usize,
) -> Option<(String, StructItem, usize)> {
    let toks = &lexed.tokens;
    let TokenKind::Ident(name) = &toks.get(struct_tok + 1)?.kind else {
        return None;
    };
    let mut i = struct_tok + 2;
    if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Punct('<'))) {
        i = skip_angles(lexed, i);
    }
    match toks.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct('{')) => {}
        // Tuple struct or unit struct: no named fields to record.
        _ => return Some((name.clone(), StructItem::default(), i)),
    }
    let close = brace_match.get(i).copied().unwrap_or(usize::MAX);
    if close == usize::MAX {
        return None;
    }
    let mut fields = Vec::new();
    let mut j = i + 1;
    while j < close {
        // Skip attributes and visibility.
        match &toks[j].kind {
            TokenKind::Punct('#') => {
                if matches!(
                    toks.get(j + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct('['))
                ) {
                    j = skip_group(lexed, brace_match, j + 1) + 1;
                } else {
                    j += 1;
                }
                continue;
            }
            TokenKind::Ident(s) if s == "pub" => {
                j += 1;
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokenKind::Punct('('))) {
                    j = skip_group(lexed, brace_match, j) + 1;
                }
                continue;
            }
            _ => {}
        }
        // `name : Type ,`
        let TokenKind::Ident(fname) = &toks[j].kind else {
            j += 1;
            continue;
        };
        if !matches!(
            toks.get(j + 1).map(|t| &t.kind),
            Some(TokenKind::Punct(':'))
        ) {
            j += 1;
            continue;
        }
        let mut type_idents = Vec::new();
        let mut k = j + 2;
        let mut depth = 0i32;
        while k < close {
            match &toks[k].kind {
                TokenKind::Punct('<') | TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct('>') | TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct(',') if depth <= 0 => break,
                TokenKind::Ident(t) => type_idents.push(t.clone()),
                _ => {}
            }
            k += 1;
        }
        fields.push(FieldItem {
            name: fname.clone(),
            type_idents,
        });
        j = k + 1;
    }
    Some((name.clone(), StructItem { fields }, close + 1))
}

/// Parse `static NAME: Type = …;`.
fn parse_static(lexed: &Lexed, static_tok: usize) -> Option<StaticItem> {
    let toks = &lexed.tokens;
    let mut i = static_tok + 1;
    if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Ident(s)) if s == "mut") {
        i += 1;
    }
    let TokenKind::Ident(name) = &toks.get(i)?.kind else {
        return None;
    };
    if !matches!(
        toks.get(i + 1).map(|t| &t.kind),
        Some(TokenKind::Punct(':'))
    ) {
        return None;
    }
    let mut is_lock = false;
    let mut j = i + 2;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('=') | TokenKind::Punct(';') => break,
            TokenKind::Ident(t) if t == "Mutex" || t == "RwLock" => is_lock = true,
            _ => {}
        }
        j += 1;
    }
    Some(StaticItem {
        name: name.clone(),
        is_lock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn syn(src: &str) -> (crate::lexer::Lexed, Syntax) {
        let lexed = lex(src);
        let s = Syntax::build(&lexed);
        (lexed, s)
    }

    #[test]
    fn fns_get_their_impl_type() {
        let src = "impl Foo { fn a(&self) {} }\n\
                   impl<V> Bar<V> { fn b(&self) {} }\n\
                   impl Trait for Baz { fn c(&self) {} }\n\
                   fn free() {}\n";
        let (_, s) = syn(src);
        let by_name: Vec<(String, Option<String>)> = s
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("a".to_string(), Some("Foo".to_string())),
                ("b".to_string(), Some("Bar".to_string())),
                ("c".to_string(), Some("Baz".to_string())),
                ("free".to_string(), None),
            ]
        );
    }

    #[test]
    fn struct_fields_carry_type_idents_and_lock_flag() {
        let src = "pub struct M { pub stripes: Box<[Mutex<IdSlab<V>>]>, len: AtomicUsize }";
        let (_, s) = syn(src);
        let m = &s.structs["M"];
        assert_eq!(m.fields.len(), 2);
        assert!(m.fields[0].is_lock());
        assert_eq!(m.fields[0].base_type(), Some("Box"));
        assert!(!m.fields[1].is_lock());
    }

    #[test]
    fn statics_detected() {
        let (_, s) = syn("static GLOBAL: Mutex<u32> = Mutex::new(0);\nstatic N: usize = 3;\n");
        assert_eq!(s.statics.len(), 2);
        assert!(s.statics[0].is_lock);
        assert_eq!(s.statics[0].name, "GLOBAL");
        assert!(!s.statics[1].is_lock);
    }

    #[test]
    fn fn_body_skips_return_types_with_parens() {
        let src = "fn f(x: u8) -> Option<(u8, u8)> { Some((x, x)) }\nfn decl();\n";
        let (_, s) = syn(src);
        assert!(s.fns[0].body.is_some());
        assert!(s.fns[1].body.is_none());
    }

    #[test]
    fn statements_split_on_semicolons_and_blocks() {
        let src = "fn f() { let a = 1; if a > 0 { g(); } let b = 2; h(b) }";
        let (lexed, s) = syn(src);
        let (open, close) = s.fns[0].body.expect("fn f has a body in this fixture");
        let stmts = s.statements(&lexed, open, close);
        assert_eq!(stmts.len(), 4, "{stmts:?}");
    }

    #[test]
    fn let_else_is_one_statement() {
        let src = "fn f() { let Ok(mut st) = m.try_lock() else { return; }; use_it(st); }";
        let (lexed, s) = syn(src);
        let (open, close) = s.fns[0].body.expect("fn f has a body in this fixture");
        let stmts = s.statements(&lexed, open, close);
        assert_eq!(stmts.len(), 2, "{stmts:?}");
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() { fn inner() { mark(); } inner(); }";
        let (lexed, s) = syn(src);
        let mark = lexed
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, TokenKind::Ident(n) if n == "mark"))
            .expect("mark token present in this fixture");
        let f = s.enclosing_fn(mark).expect("mark sits inside a fn body");
        assert_eq!(s.fns[f].name, "inner");
    }
}
