//! `icache-lint`: repo-specific static analysis for the iCache
//! workspace. See DESIGN.md §9.
//!
//! Rule families, each encoding an invariant the test suite cannot
//! cheaply enforce:
//!
//! - **determinism** — no unordered collections or ambient entropy in
//!   crates whose output must be a pure function of `(config, seed)`;
//! - **contract** — the metric and trace-event names the code emits and
//!   the names DESIGN.md documents must match exactly, both directions;
//! - **panic** — library code may not `unwrap()`/`panic!`; `expect()`
//!   must state the invariant it relies on;
//! - **hygiene** — `#![forbid(unsafe_code)]` in every crate root, no
//!   committed `dbg!`/`todo!`/`unimplemented!`, well-formed `lint:`
//!   directives;
//! - **locks** (`locks-order`, `locks-io`, `locks-guard`) — the
//!   concurrency discipline: the global lock-acquisition-order graph
//!   must be acyclic and match the hierarchy declared in `[locks]
//!   order`, no guard may be live across blocking I/O, and guard
//!   bindings must be hygienic (see `rules/locks.rs`);
//! - **stale-allow** — every suppression (inline hatch or `lint.toml`
//!   allow entry) must still be suppressing something.
//!
//! The analysis is a hand-rolled lexer plus token-level pattern rules,
//! extended with a lightweight syntactic layer (`syntax.rs`: brace
//! matching, item discovery, statement segmentation) and an
//! intra-workspace call graph (`callgraph.rs`) for the lock rules — the
//! container has no AST-parsing crate vendored, and the invariants
//! above are all expressible at this level with accurate line/column
//! positions.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod syntax;
pub mod walk;

use config::Config;
use diagnostics::Finding;
use source::SourceFile;
use std::path::Path;

/// Every rule id an allow hatch may name. `stale-allow` is deliberately
/// absent: a hatch for the stale-hatch rule would be self-defeating.
pub const KNOWN_RULES: &[&str] = &[
    "contract",
    "determinism",
    "hygiene",
    "locks-guard",
    "locks-io",
    "locks-order",
    "panic",
];

/// Everything a full run produces: the findings plus the lock graph
/// (the `--lock-graph` CI artifact).
pub struct RunReport {
    /// Sorted, deduplicated findings across all rules.
    pub findings: Vec<Finding>,
    /// Lock-acquisition-order graph as canonical JSON: nodes, edges,
    /// witness cycle paths, blocking paths.
    pub lock_graph: icache_obs::Json,
}

/// Run every rule over the workspace at `root`. Returns the sorted,
/// deduplicated findings; `Err` means the scan itself failed (unreadable
/// tree), not that findings exist.
pub fn run(root: &Path, cfg: &Config) -> Result<Vec<Finding>, String> {
    run_full(root, cfg).map(|r| r.findings)
}

/// [`run`], plus the lock-graph artifact.
pub fn run_full(root: &Path, cfg: &Config) -> Result<RunReport, String> {
    let discovered = walk::collect(root, cfg)?;
    let mut files = Vec::with_capacity(discovered.len());
    for wf in &discovered {
        let text = std::fs::read_to_string(&wf.abs)
            .map_err(|e| format!("read {}: {e}", wf.abs.display()))?;
        files.push(SourceFile::parse(
            wf.rel.clone(),
            wf.crate_dir.clone(),
            wf.kind,
            &text,
        ));
    }

    let mut findings = Vec::new();
    for file in &files {
        rules::determinism::check(file, cfg, &mut findings);
        rules::panic::check(file, cfg, &mut findings);
        rules::hygiene::check(file, cfg, &mut findings);
    }
    let design_text = std::fs::read_to_string(root.join(&cfg.design)).ok();
    rules::contract::check(&files, design_text.as_deref(), cfg, &mut findings);

    let syntaxes: Vec<syntax::Syntax> = files
        .iter()
        .map(|f| syntax::Syntax::build(&f.lexed))
        .collect();
    let graph = callgraph::CallGraph::build(&files, &syntaxes);
    let analysis = rules::locks::check(&files, &syntaxes, &graph, cfg, &mut findings);

    // Stale-suppression detection must run last: it reads the usage
    // marks every other rule left behind while consulting its hatches.
    rules::stale::check(&files, cfg, &analysis, &mut findings);

    diagnostics::sort_findings(&mut findings);
    Ok(RunReport {
        findings,
        lock_graph: analysis.graph,
    })
}

/// Load the configuration for `root`: `lint.toml` beside the workspace
/// manifest when present, built-in defaults otherwise. An explicit
/// `config_path` overrides both and must exist.
pub fn load_config(root: &Path, config_path: Option<&Path>) -> Result<Config, String> {
    let path = match config_path {
        Some(p) => p.to_path_buf(),
        None => {
            let default = root.join("lint.toml");
            if !default.is_file() {
                return Ok(Config::default());
            }
            default
        }
    };
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Config::parse(&text)
}
