//! A minimal Rust lexer: just enough tokenization to drive line-level
//! static analysis without a full parser.
//!
//! The lexer's one job is to distinguish *code* from *non-code* so rules
//! never fire inside comments, doc comments, or string literals — the
//! classic failure mode of grep-based lint passes. It understands:
//!
//! - line comments (`//`, `///`, `//!`) and nested block comments,
//! - string literals with escapes, raw strings (`r#"…"#`, any number of
//!   `#`s), byte strings and raw byte strings,
//! - char literals vs. lifetimes (`'a'` vs. `'a`),
//! - raw identifiers (`r#type`),
//! - numeric literals (loosely — enough not to swallow `0.unwrap()`).
//!
//! Everything else becomes single-character [`TokenKind::Punct`] tokens;
//! rules match multi-character operators (`=>`, `::`) as adjacent puncts.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `use`, …).
    Ident(String),
    /// A string literal; the payload is the *unquoted* raw text (escape
    /// sequences are left unprocessed — rules compare names, which never
    /// contain escapes).
    StrLit(String),
    /// A character literal (`'x'`, `'\n'`). Contents are irrelevant here.
    CharLit,
    /// A lifetime (`'a`, `'_`).
    Lifetime,
    /// A numeric literal.
    NumLit,
    /// Any other single character.
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// A comment (line or block), captured for directive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when code precedes the comment on its line (a trailing
    /// comment annotates its own line; a standalone one annotates the
    /// next code line).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    code_on_line: bool,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
                self.code_on_line = false;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn is_ident_start(c: char) -> bool {
        c.is_alphabetic() || c == '_'
    }

    fn is_ident_continue(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }
}

/// Lex `src` into tokens and comments. Never fails: unrecognized bytes
/// become [`TokenKind::Punct`] tokens.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        code_on_line: false,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c == '\n' || c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let trailing = cur.code_on_line;
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if n == '\n' {
                    break;
                }
                text.push(n);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                trailing,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let trailing = cur.code_on_line;
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        if let Some(ch) = cur.bump() {
                            text.push(ch);
                        }
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                text,
                line,
                trailing,
            });
            continue;
        }
        // Raw identifiers and raw/byte strings share prefixes with idents.
        if Cursor::is_ident_start(c) {
            // r"..."  r#"..."#  br"..."  b"..."  r#ident
            let raw_str = |cur: &Cursor, at: usize| -> Option<usize> {
                // Returns the number of `#`s when position `at` starts a
                // raw-string opener (`#`* followed by `"`).
                let mut hashes = 0usize;
                while cur.peek(at + hashes) == Some('#') {
                    hashes += 1;
                }
                if cur.peek(at + hashes) == Some('"') {
                    Some(hashes)
                } else {
                    None
                }
            };
            let mut handled = false;
            if c == 'r' || c == 'b' {
                let offset = if c == 'b' && cur.peek(1) == Some('r') {
                    2
                } else {
                    1
                };
                if (c == 'r' || offset == 2) && raw_str(&cur, offset).is_some() {
                    if let Some(hashes) = raw_str(&cur, offset) {
                        for _ in 0..offset + hashes + 1 {
                            cur.bump();
                        }
                        let mut text = String::new();
                        loop {
                            match cur.peek(0) {
                                None => break,
                                Some('"') => {
                                    let mut matched = true;
                                    for h in 0..hashes {
                                        if cur.peek(1 + h) != Some('#') {
                                            matched = false;
                                            break;
                                        }
                                    }
                                    if matched {
                                        for _ in 0..hashes + 1 {
                                            cur.bump();
                                        }
                                        break;
                                    }
                                    text.push('"');
                                    cur.bump();
                                }
                                Some(ch) => {
                                    text.push(ch);
                                    cur.bump();
                                }
                            }
                        }
                        out.tokens.push(Token {
                            kind: TokenKind::StrLit(text),
                            line,
                            col,
                        });
                        cur.code_on_line = true;
                        handled = true;
                    }
                } else if c == 'b' && cur.peek(1) == Some('"') {
                    cur.bump(); // b
                    lex_quoted(&mut cur, &mut out, line, col);
                    handled = true;
                } else if c == 'r'
                    && cur.peek(1) == Some('#')
                    && cur.peek(2).is_some_and(Cursor::is_ident_start)
                {
                    cur.bump();
                    cur.bump();
                    let mut name = String::new();
                    while let Some(n) = cur.peek(0) {
                        if !Cursor::is_ident_continue(n) {
                            break;
                        }
                        name.push(n);
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Ident(name),
                        line,
                        col,
                    });
                    cur.code_on_line = true;
                    handled = true;
                }
            }
            if handled {
                continue;
            }
            let mut name = String::new();
            while let Some(n) = cur.peek(0) {
                if !Cursor::is_ident_continue(n) {
                    break;
                }
                name.push(n);
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident(name),
                line,
                col,
            });
            cur.code_on_line = true;
            continue;
        }
        if c == '"' {
            lex_quoted(&mut cur, &mut out, line, col);
            continue;
        }
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote. Char literal
            // otherwise.
            let next = cur.peek(1);
            let after = cur.peek(2);
            let is_lifetime = next.is_some_and(Cursor::is_ident_start) && after != Some('\'');
            if is_lifetime {
                cur.bump();
                while cur.peek(0).is_some_and(Cursor::is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    line,
                    col,
                });
            } else {
                cur.bump();
                loop {
                    match cur.peek(0) {
                        None | Some('\n') => break,
                        Some('\\') => {
                            cur.bump();
                            cur.bump();
                        }
                        Some('\'') => {
                            cur.bump();
                            break;
                        }
                        Some(_) => {
                            cur.bump();
                        }
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::CharLit,
                    line,
                    col,
                });
            }
            cur.code_on_line = true;
            continue;
        }
        if c.is_ascii_digit() {
            cur.bump();
            while cur.peek(0).is_some_and(|n| n.is_alphanumeric() || n == '_') {
                cur.bump();
            }
            // A fraction only when a digit follows the dot — `0.unwrap()`
            // must leave the `.` as punctuation.
            if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                cur.bump();
                while cur.peek(0).is_some_and(|n| n.is_alphanumeric() || n == '_') {
                    cur.bump();
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::NumLit,
                line,
                col,
            });
            cur.code_on_line = true;
            continue;
        }
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct(c),
            line,
            col,
        });
        cur.code_on_line = true;
    }
    out
}

fn lex_quoted(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // opening quote
    let mut text = String::new();
    loop {
        match cur.peek(0) {
            None => break,
            Some('\\') => {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            Some('"') => {
                cur.bump();
                break;
            }
            Some(_) => {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::StrLit(text),
        line,
        col,
    });
    cur.code_on_line = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("// HashMap here\nlet x = 1; /* HashSet */\n/// doc HashMap\n");
        assert!(idents("// HashMap\nlet x = 1;").contains(&"let".to_string()));
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s.contains("Hash"))));
        assert_eq!(l.comments.len(), 3);
        assert!(!l.comments[0].trailing);
        assert!(l.comments[1].trailing);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn x() {}");
        assert_eq!(idents("/* a /* b */ c */ fn x() {}"), vec!["fn", "x"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("b"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = lex(r#"let s = "HashMap::unwrap()";"#);
        assert!(!toks
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "HashMap")));
        assert!(toks
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::StrLit(s) if s.contains("HashMap"))));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"a \"quoted\" b\"#; let t = r\"plain\";";
        let lits: Vec<String> = lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::StrLit(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(
            lits,
            vec!["a \"quoted\" b".to_string(), "plain".to_string()]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let l = lex(r"let c = '\''; let d = '\n'; let e = b'x';");
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::CharLit));
        // No stray string literal opened by the escaped quote.
        assert!(!l
            .tokens
            .iter()
            .any(|t| matches!(t.kind, TokenKind::StrLit(_))));
    }

    #[test]
    fn tuple_field_access_keeps_the_dot() {
        let l = lex("x.0.unwrap()");
        let kinds: Vec<&TokenKind> = l.tokens.iter().map(|t| &t.kind).collect();
        assert!(kinds.contains(&&TokenKind::Ident("unwrap".to_string())));
        // The dot before `unwrap` survives as punctuation.
        let has_dot_before_unwrap = l.tokens.windows(2).any(|w| {
            w[0].kind == TokenKind::Punct('.')
                && matches!(&w[1].kind, TokenKind::Ident(s) if s == "unwrap")
        });
        assert!(has_dot_before_unwrap);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("ab\n  cd");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("r#type x"), vec!["type", "x"]);
    }
}
