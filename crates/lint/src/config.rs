//! `lint.toml` parsing: a minimal, dependency-free TOML subset.
//!
//! Supported grammar — exactly what the committed config uses:
//!
//! ```toml
//! [section]
//! key = "string"
//! key = ["item", "item"]   # arrays may span lines
//! ```
//!
//! Allowlist entries are strings of the form `"<path>: <reason>"`; the
//! reason is mandatory (an allowlist without rationale is how contracts
//! rot).

use std::collections::BTreeMap;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the root) to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes to skip entirely.
    pub skip: Vec<String>,
    /// Crate directories under `crates/` subject to the determinism rule.
    pub det_crates: Vec<String>,
    /// Files exempt from the determinism rule: `(path, reason)`.
    pub det_allow: Vec<(String, String)>,
    /// Files exempt from the panic rule: `(path, reason)`.
    pub panic_allow: Vec<(String, String)>,
    /// The design document holding the §7 metrics + trace-event tables.
    pub design: String,
    /// The file whose `=> "name"` match arms define trace-event names.
    pub event_source: String,
    /// Minimum length of an `expect()` message for it to count as an
    /// invariant statement.
    pub min_expect_message: usize,
    /// The authoritative lock hierarchy, outermost first: a lock may
    /// only be acquired while holding locks that appear *earlier* in
    /// this list. Empty disables the declared-order checks (cycle and
    /// I/O checks still run).
    pub lock_order: Vec<String>,
    /// Lock classes allowed to self-nest (e.g. all-shards-ascending
    /// acquisition): `(lock, reason)`.
    pub lock_classes: Vec<(String, String)>,
    /// Locks allowed to be held across blocking calls: `(lock, reason)`.
    pub lock_io_exempt: Vec<(String, String)>,
    /// Free functions that acquire the lock passed as their first
    /// argument (contention-counting wrappers).
    pub lock_wrappers: Vec<String>,
    /// Callee names treated as blocking I/O sinks.
    pub lock_blocking: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            roots: vec![
                "crates".to_string(),
                "src".to_string(),
                "tests".to_string(),
                "examples".to_string(),
            ],
            skip: vec!["vendor".to_string(), "target".to_string()],
            det_crates: vec![
                "core".to_string(),
                "sampling".to_string(),
                "baselines".to_string(),
                "sim".to_string(),
            ],
            det_allow: Vec::new(),
            panic_allow: Vec::new(),
            design: "DESIGN.md".to_string(),
            event_source: "crates/obs/src/trace.rs".to_string(),
            min_expect_message: 8,
            lock_order: Vec::new(),
            lock_classes: Vec::new(),
            lock_io_exempt: Vec::new(),
            lock_wrappers: vec!["lock_counted".to_string()],
            lock_blocking: vec![
                "read_sample".to_string(),
                "read_samples".to_string(),
                "read_package".to_string(),
                "send".to_string(),
                "recv".to_string(),
            ],
        }
    }
}

impl Config {
    /// Parse a `lint.toml` document. Unknown sections/keys are errors —
    /// a misspelled allowlist key silently ignoring violations would
    /// defeat the tool.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let raw = parse_sections(text)?;
        for (section, entries) in &raw {
            for (key, value) in entries {
                match (section.as_str(), key.as_str()) {
                    ("workspace", "roots") => cfg.roots = value.clone().into_array()?,
                    ("workspace", "skip") => cfg.skip = value.clone().into_array()?,
                    ("determinism", "crates") => cfg.det_crates = value.clone().into_array()?,
                    ("determinism", "allow") => {
                        cfg.det_allow = split_allow_entries(value.clone().into_array()?)?
                    }
                    ("panic", "allow") => {
                        cfg.panic_allow = split_allow_entries(value.clone().into_array()?)?
                    }
                    ("panic", "min_expect_message") => {
                        cfg.min_expect_message = value
                            .clone()
                            .into_string()?
                            .parse()
                            .map_err(|e| format!("min_expect_message: {e}"))?
                    }
                    ("contract", "design") => cfg.design = value.clone().into_string()?,
                    ("contract", "event_source") => {
                        cfg.event_source = value.clone().into_string()?
                    }
                    ("locks", "order") => cfg.lock_order = value.clone().into_array()?,
                    ("locks", "classes") => {
                        cfg.lock_classes = split_allow_entries(value.clone().into_array()?)?
                    }
                    ("locks", "io_exempt") => {
                        cfg.lock_io_exempt = split_allow_entries(value.clone().into_array()?)?
                    }
                    ("locks", "wrappers") => cfg.lock_wrappers = value.clone().into_array()?,
                    ("locks", "blocking") => cfg.lock_blocking = value.clone().into_array()?,
                    _ => {
                        return Err(format!(
                            "lint.toml: unknown key `{key}` in section `[{section}]`"
                        ))
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// Look up a file-level allow entry. Returns the reason when present.
    pub fn file_allowed<'a>(list: &'a [(String, String)], rel: &str) -> Option<&'a str> {
        list.iter().find(|(p, _)| p == rel).map(|(_, r)| r.as_str())
    }
}

#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Array(Vec<String>),
}

impl Value {
    fn into_array(self) -> Result<Vec<String>, String> {
        match self {
            Value::Array(v) => Ok(v),
            Value::Str(s) => Err(format!("expected an array, got string `{s}`")),
        }
    }

    fn into_string(self) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Array(_) => Err("expected a string, got an array".to_string()),
        }
    }
}

fn split_allow_entries(items: Vec<String>) -> Result<Vec<(String, String)>, String> {
    items
        .into_iter()
        .map(|item| match item.split_once(':') {
            Some((path, reason)) if !reason.trim().is_empty() => {
                Ok((path.trim().to_string(), reason.trim().to_string()))
            }
            _ => Err(format!(
                "allow entry `{item}` must be \"<path>: <reason>\" — reasons are mandatory"
            )),
        })
        .collect()
}

type Sections = BTreeMap<String, Vec<(String, Value)>>;

fn parse_sections(text: &str) -> Result<Sections, String> {
    let mut out: Sections = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, line)) = lines.next() {
        let line = strip_comment(line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{}: expected `key = value`", n + 1));
        };
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        if value.starts_with('[') {
            // Accumulate a possibly multi-line array until brackets close.
            while !array_closed(&value) {
                match lines.next() {
                    Some((_, next)) => {
                        value.push(' ');
                        value.push_str(strip_comment(next).trim());
                    }
                    None => return Err(format!("lint.toml:{}: unterminated array", n + 1)),
                }
            }
            out.entry(section.clone())
                .or_default()
                .push((key, Value::Array(extract_strings(&value))));
        } else if value.starts_with('"') && value.ends_with('"') && value.len() >= 2 {
            out.entry(section.clone())
                .or_default()
                .push((key, Value::Str(value[1..value.len() - 1].to_string())));
        } else {
            return Err(format!(
                "lint.toml:{}: value for `{key}` must be a string or array",
                n + 1
            ));
        }
    }
    Ok(out)
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment only outside quotes.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn array_closed(acc: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in acc.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn extract_strings(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => {
                if in_str {
                    out.push(std::mem::take(&mut cur));
                }
                in_str = !in_str;
            }
            _ if in_str => cur.push(c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_workspace() {
        let c = Config::default();
        assert!(c.det_crates.contains(&"core".to_string()));
        assert_eq!(c.design, "DESIGN.md");
    }

    #[test]
    fn parses_sections_strings_and_arrays() {
        let c = Config::parse(
            r#"
[workspace]
roots = ["crates", "src"]
skip = ["vendor"] # third-party stand-ins

[determinism]
crates = ["core"]
allow = [
    "crates/baselines/src/timing.rs: wall-clock is the point",
]

[contract]
design = "DOC.md"
"#,
        )
        .unwrap();
        assert_eq!(c.roots, vec!["crates", "src"]);
        assert_eq!(c.det_crates, vec!["core"]);
        assert_eq!(c.design, "DOC.md");
        assert_eq!(c.det_allow.len(), 1);
        assert_eq!(c.det_allow[0].0, "crates/baselines/src/timing.rs");
        assert_eq!(c.det_allow[0].1, "wall-clock is the point");
    }

    #[test]
    fn locks_section_parses() {
        let c = Config::parse(
            r#"
[locks]
order = ["M.gate", "M.admit"]
classes = ["H.shards: all-shards ascending"]
io_exempt = ["M.gate: read barrier by design"]
wrappers = ["lock_counted"]
blocking = ["read_sample", "recv"]
"#,
        )
        .unwrap();
        assert_eq!(c.lock_order, vec!["M.gate", "M.admit"]);
        assert_eq!(
            c.lock_classes,
            vec![("H.shards".into(), "all-shards ascending".into())]
        );
        assert_eq!(c.lock_io_exempt.len(), 1);
        assert_eq!(c.lock_blocking, vec!["read_sample", "recv"]);
    }

    #[test]
    fn lock_defaults_cover_wrapper_and_sinks() {
        let c = Config::default();
        assert_eq!(c.lock_wrappers, vec!["lock_counted"]);
        assert!(c.lock_blocking.contains(&"read_package".to_string()));
        assert!(c.lock_order.is_empty());
    }

    #[test]
    fn reasonless_allow_entries_are_rejected() {
        let err = Config::parse("[determinism]\nallow = [\"crates/x.rs\"]\n").unwrap_err();
        assert!(err.contains("reasons are mandatory"), "{err}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(Config::parse("[workspace]\nrots = [\"x\"]\n").is_err());
    }
}
