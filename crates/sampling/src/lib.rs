//! Importance-sampling algorithms for the iCache reproduction.
//!
//! The paper adopts the *loss-based* importance-sampling algorithm of
//! Jiang et al. \[18\]: each sample's importance value (IV) is its recent
//! training loss, tracked across epochs. On top of that this crate
//! implements the two sampling modes the paper contrasts:
//!
//! * **CIS** (computing-oriented IS) — every sample is still *fetched*
//!   each epoch, but low-importance samples are skipped on the GPU. This
//!   reduces compute only (paper §II-B shows it barely helps I/O-bound
//!   training).
//! * **IIS** (I/O-oriented IS, the paper's proposal) — the sample set for
//!   the epoch is chosen *before* the epoch from historical IVs; unselected
//!   samples are neither fetched nor computed.
//!
//! The crate also builds the **H-list** — the client-side list of
//! `(id, importance)` pairs for high-importance samples that iCache's cache
//! manager pulls periodically — and the percentile-based *relative
//! importance values* used by the multi-job coordinator.
//!
//! # Examples
//!
//! ```
//! use icache_sampling::{ImportanceTable, IisSelector, Selector};
//! use icache_types::{Epoch, SampleId, SeedSequence};
//!
//! let mut table = ImportanceTable::new(1_000);
//! table.record_loss(SampleId(3), 5.0);
//! let mut sel = IisSelector::new(0.7)?;
//! let mut rng = SeedSequence::new(1).rng("select");
//! let plan = sel.plan_epoch(&table, Epoch(1), &mut rng);
//! assert!(plan.len() <= 1_000);
//! # Ok::<(), icache_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod criterion;
mod hlist;
mod importance;
mod selector;

pub use criterion::{CriterionTable, ImportanceCriterion};
pub use hlist::{HList, HListEntry};
pub use importance::ImportanceTable;
pub use selector::{CisSelector, EpochPlan, IisSelector, Selector, UniformSelector};
