//! Importance criteria beyond raw loss (§VI, "Other importance sampling
//! methods").
//!
//! The paper adopts the loss-based criterion \[18\] but notes that other
//! estimators "can also be modified and integrated into iCACHE". This
//! module provides the pluggable criterion abstraction and three
//! published estimators expressed over the quantities our training
//! substrate exposes:
//!
//! * [`ImportanceCriterion::Loss`] — the paper's default: importance is
//!   the (EMA-smoothed) training loss.
//! * [`ImportanceCriterion::GradNorm`] — an upper-bound-of-gradient-norm
//!   estimator in the spirit of Katharopoulos & Fleuret \[24\]; for
//!   cross-entropy the last-layer gradient norm grows super-linearly in
//!   the loss, modelled here as `loss^2`.
//! * [`ImportanceCriterion::Staleness`] — loss weighted by how long ago
//!   the sample was last trained; hedges against stale estimates the way
//!   the auxiliary-model approaches \[49\] hedge with fresh predictions.

use crate::ImportanceTable;
use icache_types::{Epoch, ImportanceValue, SampleId};

/// A pluggable mapping from observed training signals to importance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImportanceCriterion {
    /// Importance = smoothed loss (the paper's choice, \[18\]).
    #[default]
    Loss,
    /// Importance = smoothed loss squared (gradient-norm upper bound
    /// proxy, \[24\]). Sharpens the ranking toward the hardest samples.
    GradNorm,
    /// Importance = smoothed loss × (1 + staleness · epochs-since-seen).
    /// Boosts samples whose estimate is old, improving exploration.
    Staleness,
}

impl ImportanceCriterion {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ImportanceCriterion::Loss => "loss",
            ImportanceCriterion::GradNorm => "gradnorm",
            ImportanceCriterion::Staleness => "staleness",
        }
    }

    /// All provided criteria (for sweeps).
    pub fn all() -> [ImportanceCriterion; 3] {
        [
            ImportanceCriterion::Loss,
            ImportanceCriterion::GradNorm,
            ImportanceCriterion::Staleness,
        ]
    }
}

/// An importance view that applies a [`ImportanceCriterion`] on top of a
/// raw loss table.
///
/// The criterion only *re-scores*; observation bookkeeping stays in the
/// underlying [`ImportanceTable`], so criteria can be swapped mid-training
/// or compared on identical histories.
///
/// # Examples
///
/// ```
/// use icache_sampling::{CriterionTable, ImportanceCriterion, ImportanceTable};
/// use icache_types::{Epoch, SampleId};
///
/// let mut t = CriterionTable::new(ImportanceTable::new(10), ImportanceCriterion::GradNorm);
/// t.record_loss(SampleId(0), 3.0, Epoch(0));
/// t.record_loss(SampleId(1), 1.0, Epoch(0));
/// // GradNorm sharpens: 3.0 vs 1.0 becomes 9.0 vs 1.0.
/// assert!(t.value(SampleId(0)).get() / t.value(SampleId(1)).get() > 8.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CriterionTable {
    table: ImportanceTable,
    criterion: ImportanceCriterion,
    last_seen: Vec<u32>,
    current_epoch: u32,
    /// Staleness boost per epoch not seen (for `Staleness`).
    staleness_rate: f64,
}

impl CriterionTable {
    /// Wrap `table` with `criterion`.
    pub fn new(table: ImportanceTable, criterion: ImportanceCriterion) -> Self {
        let n = table.len() as usize;
        CriterionTable {
            table,
            criterion,
            last_seen: vec![0; n],
            current_epoch: 0,
            staleness_rate: 0.15,
        }
    }

    /// The active criterion.
    pub fn criterion(&self) -> ImportanceCriterion {
        self.criterion
    }

    /// Swap the criterion without losing observation history.
    pub fn set_criterion(&mut self, criterion: ImportanceCriterion) {
        self.criterion = criterion;
    }

    /// The underlying raw loss table.
    pub fn raw(&self) -> &ImportanceTable {
        &self.table
    }

    /// Record a loss observation for `id` during `epoch`.
    pub fn record_loss(&mut self, id: SampleId, loss: f64, epoch: Epoch) {
        self.table.record_loss(id, loss);
        self.last_seen[id.index()] = epoch.0;
        self.current_epoch = self.current_epoch.max(epoch.0);
    }

    /// Advance the epoch clock (staleness is measured against this).
    pub fn on_epoch_start(&mut self, epoch: Epoch) {
        self.current_epoch = self.current_epoch.max(epoch.0);
    }

    /// The criterion-scored importance of `id`.
    pub fn value(&self, id: SampleId) -> ImportanceValue {
        let raw = self.table.value(id).get();
        let scored = match self.criterion {
            ImportanceCriterion::Loss => raw,
            ImportanceCriterion::GradNorm => raw * raw,
            ImportanceCriterion::Staleness => {
                let age = self
                    .current_epoch
                    .saturating_sub(self.last_seen[id.index()]);
                raw * (1.0 + self.staleness_rate * age as f64)
            }
        };
        ImportanceValue::saturating(scored)
    }

    /// A scored copy of the table, usable by selectors and H-lists that
    /// expect an [`ImportanceTable`].
    pub fn scored_table(&self) -> ImportanceTable {
        let n = self.table.len();
        let mut out = ImportanceTable::new(n);
        for i in 0..n {
            let id = SampleId(i);
            if self.table.is_observed(id) {
                out.record_loss(id, self.value(id).get());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(losses: &[(u64, f64)], n: u64, epoch: u32) -> CriterionTable {
        let mut t = CriterionTable::new(ImportanceTable::new(n), ImportanceCriterion::Loss);
        for &(id, l) in losses {
            t.record_loss(SampleId(id), l, Epoch(epoch));
        }
        t
    }

    #[test]
    fn loss_criterion_is_identity() {
        let t = table_with(&[(0, 2.5)], 4, 0);
        assert_eq!(t.value(SampleId(0)).get(), 2.5);
    }

    #[test]
    fn gradnorm_squares_and_preserves_order() {
        let mut t = table_with(&[(0, 3.0), (1, 1.0), (2, 0.5)], 4, 0);
        t.set_criterion(ImportanceCriterion::GradNorm);
        assert_eq!(t.value(SampleId(0)).get(), 9.0);
        assert_eq!(t.value(SampleId(2)).get(), 0.25);
        assert!(t.value(SampleId(0)) > t.value(SampleId(1)));
        assert!(t.value(SampleId(1)) > t.value(SampleId(2)));
    }

    #[test]
    fn staleness_boosts_long_unseen_samples() {
        let mut t = table_with(&[(0, 1.0), (1, 1.0)], 4, 0);
        t.set_criterion(ImportanceCriterion::Staleness);
        // Sample 1 gets re-observed at epoch 10; sample 0 goes stale.
        t.record_loss(SampleId(1), 1.0, Epoch(10));
        assert!(
            t.value(SampleId(0)) > t.value(SampleId(1)),
            "stale estimate must be boosted: {} vs {}",
            t.value(SampleId(0)),
            t.value(SampleId(1))
        );
    }

    #[test]
    fn swapping_criteria_keeps_history() {
        let mut t = table_with(&[(0, 2.0)], 4, 0);
        t.set_criterion(ImportanceCriterion::GradNorm);
        assert_eq!(t.value(SampleId(0)).get(), 4.0);
        t.set_criterion(ImportanceCriterion::Loss);
        assert_eq!(t.value(SampleId(0)).get(), 2.0);
        assert_eq!(t.raw().updates(), 1);
    }

    #[test]
    fn scored_table_feeds_hlists() {
        let mut t = table_with(&[(0, 3.0), (1, 1.0)], 8, 0);
        t.set_criterion(ImportanceCriterion::GradNorm);
        let scored = t.scored_table();
        assert_eq!(scored.value(SampleId(0)).get(), 9.0);
        // Unobserved samples keep the optimistic prior.
        assert!(!scored.is_observed(SampleId(5)));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ImportanceCriterion::Loss.name(), "loss");
        assert_eq!(ImportanceCriterion::GradNorm.name(), "gradnorm");
        assert_eq!(ImportanceCriterion::Staleness.name(), "staleness");
        assert_eq!(ImportanceCriterion::all().len(), 3);
    }
}
