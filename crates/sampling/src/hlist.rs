//! The H-list: the client's record of high-importance samples.

use crate::ImportanceTable;
use icache_types::{IdSet, ImportanceValue, SampleId};

/// One `<ID, IV>` vector entry of the H-list (both 64-bit, as in §III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HListEntry {
    /// Sample identity.
    pub id: SampleId,
    /// Importance value at the time the H-list was built.
    pub iv: ImportanceValue,
}

/// The H-list a client module maintains and the cache manager periodically
/// pulls: the ids and importance values of the samples currently considered
/// *H-samples* (paper §III-A).
///
/// Membership tests are O(1) (bitmap), which Algorithm 1 needs on every
/// sample of every batch.
///
/// # Examples
///
/// ```
/// use icache_sampling::{HList, ImportanceTable};
/// use icache_types::SampleId;
///
/// let mut t = ImportanceTable::new(100);
/// for i in 0..100 {
///     t.record_loss(SampleId(i), i as f64);
/// }
/// let hl = HList::top_fraction(&t, 0.1);
/// assert_eq!(hl.len(), 10);
/// assert!(hl.contains(SampleId(99)), "highest-loss sample is an H-sample");
/// assert!(!hl.contains(SampleId(0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HList {
    entries: Vec<HListEntry>,
    members: IdSet,
}

impl HList {
    /// An empty H-list over a universe of `num_samples` ids.
    pub fn empty(num_samples: u64) -> Self {
        HList {
            entries: Vec::new(),
            members: IdSet::new(num_samples),
        }
    }

    /// Build the H-list as the top `fraction` of samples by importance.
    ///
    /// `fraction` is clamped to `[0, 1]`. Ties break toward lower ids,
    /// mirroring [`ImportanceTable::ranked_ids`].
    pub fn top_fraction(table: &ImportanceTable, fraction: f64) -> Self {
        let fraction = fraction.clamp(0.0, 1.0);
        let k = ((table.len() as f64) * fraction).round() as usize;
        Self::top_k(table, k)
    }

    /// Build the H-list as the `k` most important samples.
    pub fn top_k(table: &ImportanceTable, k: usize) -> Self {
        let k = k.min(table.len() as usize);
        let ranked = table.ranked_ids();
        let mut members = IdSet::new(table.len());
        let entries: Vec<HListEntry> = ranked[..k]
            .iter()
            .map(|&id| {
                members.insert(id);
                HListEntry {
                    id,
                    iv: table.value(id),
                }
            })
            .collect();
        HList { entries, members }
    }

    /// Number of H-samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no H-samples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// O(1) membership test: is `id` an H-sample?
    #[inline]
    pub fn contains(&self, id: SampleId) -> bool {
        self.members.contains(id)
    }

    /// The recorded importance of `id`, if it is an H-sample.
    pub fn importance(&self, id: SampleId) -> Option<ImportanceValue> {
        // entries are few (a cache-sized subset); linear scan is only used
        // off the fast path, membership uses the bitmap.
        self.entries.iter().find(|e| e.id == id).map(|e| e.iv)
    }

    /// Entries in descending importance order.
    pub fn entries(&self) -> &[HListEntry] {
        &self.entries
    }

    /// Iterate over the H-sample ids in descending importance order.
    pub fn ids(&self) -> impl Iterator<Item = SampleId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// The smallest importance value on the list (the admission bar).
    pub fn min_importance(&self) -> Option<ImportanceValue> {
        self.entries.last().map(|e| e.iv)
    }

    /// Approximate space of the ID/IV vectors in bytes (16 B per entry,
    /// §III-A's overhead accounting).
    pub fn space_bytes(&self) -> u64 {
        self.entries.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u64) -> ImportanceTable {
        let mut t = ImportanceTable::new(n);
        for i in 0..n {
            t.record_loss(SampleId(i), i as f64);
        }
        t
    }

    #[test]
    fn top_fraction_selects_highest_losses() {
        let hl = HList::top_fraction(&table(100), 0.2);
        assert_eq!(hl.len(), 20);
        for i in 80..100 {
            assert!(hl.contains(SampleId(i)));
        }
        for i in 0..80 {
            assert!(!hl.contains(SampleId(i)));
        }
    }

    #[test]
    fn entries_are_sorted_descending() {
        let hl = HList::top_fraction(&table(50), 0.5);
        let ivs: Vec<f64> = hl.entries().iter().map(|e| e.iv.get()).collect();
        for w in ivs.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(hl.min_importance().unwrap().get(), 25.0);
    }

    #[test]
    fn fraction_is_clamped() {
        assert_eq!(HList::top_fraction(&table(10), 2.0).len(), 10);
        assert_eq!(HList::top_fraction(&table(10), -1.0).len(), 0);
    }

    #[test]
    fn importance_lookup_matches_table() {
        let t = table(30);
        let hl = HList::top_fraction(&t, 0.5);
        assert_eq!(hl.importance(SampleId(29)), Some(t.value(SampleId(29))));
        assert_eq!(hl.importance(SampleId(0)), None);
    }

    #[test]
    fn space_overhead_is_16_bytes_per_entry() {
        let hl = HList::top_k(&table(100), 25);
        assert_eq!(hl.space_bytes(), 400);
    }

    #[test]
    fn empty_hlist_contains_nothing() {
        let hl = HList::empty(10);
        assert!(hl.is_empty());
        assert!(!hl.contains(SampleId(0)));
        assert_eq!(hl.min_importance(), None);
    }
}
