//! Loss-based importance tracking.

use icache_types::{ImportanceValue, SampleId};

/// Per-sample importance values maintained as an exponential moving average
/// of observed training losses (the loss-based algorithm of Jiang et al.
/// \[18\], which the paper adopts "for its simplicity and efficiency").
///
/// Samples that have never been trained carry a high *prior* importance so
/// that early epochs explore the whole dataset — this matches the paper's
/// warm-up behaviour where the first epoch visits everything.
///
/// # Examples
///
/// ```
/// use icache_sampling::ImportanceTable;
/// use icache_types::SampleId;
///
/// let mut t = ImportanceTable::new(10);
/// t.record_loss(SampleId(0), 0.25);
/// assert!(t.value(SampleId(0)).get() < t.value(SampleId(1)).get(),
///         "an observed low loss ranks below the optimistic prior");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceTable {
    values: Vec<f64>,
    observed: Vec<bool>,
    ema_alpha: f64,
    prior: f64,
    updates: u64,
}

impl ImportanceTable {
    /// Default smoothing factor of the loss EMA.
    pub const DEFAULT_EMA_ALPHA: f64 = 0.6;
    /// Default optimistic prior for never-trained samples.
    pub const DEFAULT_PRIOR: f64 = 10.0;

    /// A table for `num_samples` samples with default smoothing and prior.
    pub fn new(num_samples: u64) -> Self {
        Self::with_params(num_samples, Self::DEFAULT_EMA_ALPHA, Self::DEFAULT_PRIOR)
    }

    /// A table with explicit EMA factor and prior.
    ///
    /// # Panics
    ///
    /// Panics if `ema_alpha` is outside `(0, 1]` or `prior` is negative or
    /// non-finite.
    pub fn with_params(num_samples: u64, ema_alpha: f64, prior: f64) -> Self {
        assert!(
            ema_alpha > 0.0 && ema_alpha <= 1.0,
            "ema_alpha must be in (0, 1]"
        );
        assert!(
            prior.is_finite() && prior >= 0.0,
            "prior must be finite and non-negative"
        );
        ImportanceTable {
            values: vec![prior; num_samples as usize],
            observed: vec![false; num_samples as usize],
            ema_alpha,
            prior,
            updates: 0,
        }
    }

    /// Number of samples tracked.
    pub fn len(&self) -> u64 {
        self.values.len() as u64
    }

    /// True when the table tracks no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of loss observations recorded.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Record a freshly observed training loss for `id`.
    ///
    /// The first observation replaces the prior outright; later ones are
    /// folded in with the EMA factor. Negative or non-finite losses are
    /// clamped via [`ImportanceValue::saturating`] semantics.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn record_loss(&mut self, id: SampleId, loss: f64) {
        let i = id.index();
        let loss = ImportanceValue::saturating(loss).get();
        if self.observed[i] {
            self.values[i] = self.ema_alpha * loss + (1.0 - self.ema_alpha) * self.values[i];
        } else {
            self.values[i] = loss;
            self.observed[i] = true;
        }
        self.updates += 1;
    }

    /// Current importance value of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value(&self, id: SampleId) -> ImportanceValue {
        ImportanceValue::saturating(self.values[id.index()])
    }

    /// Whether `id` has ever had a loss recorded.
    pub fn is_observed(&self, id: SampleId) -> bool {
        self.observed[id.index()]
    }

    /// Raw importance values in id order (read-only view).
    pub fn raw_values(&self) -> &[f64] {
        &self.values
    }

    /// The ids sorted by descending importance. Ties break toward lower
    /// ids so the order is fully deterministic.
    pub fn ranked_ids(&self) -> Vec<SampleId> {
        let mut ids: Vec<SampleId> = (0..self.len()).map(SampleId).collect();
        ids.sort_by(|a, b| {
            self.values[b.index()]
                .partial_cmp(&self.values[a.index()])
                .expect("importance values are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        ids
    }

    /// Percentile rank in `[0, 1]` of every sample's importance — the
    /// *relative importance value* (RIV) of the multi-job model (§III-D).
    /// The most important sample has RIV ≈ 1.
    pub fn percentile_ranks(&self) -> Vec<f64> {
        let n = self.values.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let ranked = self.ranked_ids();
        let mut riv = vec![0.0; n];
        for (rank, id) in ranked.iter().enumerate() {
            // rank 0 = most important -> RIV 1.0
            riv[id.index()] = 1.0 - rank as f64 / (n - 1) as f64;
        }
        riv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_applies_until_first_observation() {
        let t = ImportanceTable::new(3);
        assert_eq!(t.value(SampleId(0)).get(), ImportanceTable::DEFAULT_PRIOR);
        assert!(!t.is_observed(SampleId(0)));
    }

    #[test]
    fn first_observation_replaces_prior() {
        let mut t = ImportanceTable::new(3);
        t.record_loss(SampleId(1), 2.0);
        assert_eq!(t.value(SampleId(1)).get(), 2.0);
        assert!(t.is_observed(SampleId(1)));
    }

    #[test]
    fn ema_smooths_later_observations() {
        let mut t = ImportanceTable::with_params(1, 0.5, 10.0);
        t.record_loss(SampleId(0), 4.0);
        t.record_loss(SampleId(0), 0.0);
        assert!((t.value(SampleId(0)).get() - 2.0).abs() < 1e-12);
        assert_eq!(t.updates(), 2);
    }

    #[test]
    fn invalid_losses_are_clamped() {
        let mut t = ImportanceTable::new(1);
        t.record_loss(SampleId(0), f64::NAN);
        assert_eq!(t.value(SampleId(0)).get(), 0.0);
        t.record_loss(SampleId(0), -5.0);
        assert_eq!(t.value(SampleId(0)).get(), 0.0);
    }

    #[test]
    fn ranked_ids_descend_with_deterministic_ties() {
        let mut t = ImportanceTable::new(4);
        t.record_loss(SampleId(0), 1.0);
        t.record_loss(SampleId(1), 3.0);
        t.record_loss(SampleId(2), 3.0);
        t.record_loss(SampleId(3), 2.0);
        let ranked: Vec<u64> = t.ranked_ids().iter().map(|i| i.0).collect();
        assert_eq!(ranked, vec![1, 2, 3, 0]);
    }

    #[test]
    fn percentile_ranks_span_unit_interval() {
        let mut t = ImportanceTable::new(5);
        for i in 0..5 {
            t.record_loss(SampleId(i), i as f64);
        }
        let riv = t.percentile_ranks();
        assert_eq!(riv[4], 1.0, "highest loss gets RIV 1");
        assert_eq!(riv[0], 0.0, "lowest loss gets RIV 0");
        let mut sorted = riv.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_access_panics() {
        let t = ImportanceTable::new(1);
        let _ = t.value(SampleId(1));
    }

    #[test]
    #[should_panic(expected = "ema_alpha")]
    fn zero_alpha_rejected() {
        let _ = ImportanceTable::with_params(1, 0.0, 1.0);
    }
}
