//! Epoch planning: which samples are fetched and which are computed.

use crate::ImportanceTable;
use icache_types::{Epoch, Error, Result, SampleId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// The plan for one training epoch: the ordered list of samples the data
/// loader will *fetch*, and for each whether the GPU will *compute* it.
///
/// * Plain training / IIS: every fetched sample is computed.
/// * CIS: everything is fetched, only a subset is computed — exactly the
///   asymmetry that makes CIS ineffective for I/O-bound jobs (§II-B).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    fetch_order: Vec<SampleId>,
    computed: Vec<bool>,
    num_computed: usize,
}

impl EpochPlan {
    /// Build a plan; `computed` must parallel `fetch_order`.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length.
    pub fn new(fetch_order: Vec<SampleId>, computed: Vec<bool>) -> Self {
        assert_eq!(
            fetch_order.len(),
            computed.len(),
            "plan vectors must parallel"
        );
        let num_computed = computed.iter().filter(|&&c| c).count();
        EpochPlan {
            fetch_order,
            computed,
            num_computed,
        }
    }

    /// A plan that fetches and computes `order` in the given order.
    pub fn all_computed(order: Vec<SampleId>) -> Self {
        let n = order.len();
        EpochPlan {
            fetch_order: order,
            computed: vec![true; n],
            num_computed: n,
        }
    }

    /// Number of samples fetched this epoch.
    pub fn len(&self) -> usize {
        self.fetch_order.len()
    }

    /// True when nothing is fetched.
    pub fn is_empty(&self) -> bool {
        self.fetch_order.is_empty()
    }

    /// Number of samples the GPU computes this epoch.
    pub fn computed_count(&self) -> usize {
        self.num_computed
    }

    /// The fetch order.
    pub fn fetch_order(&self) -> &[SampleId] {
        &self.fetch_order
    }

    /// Whether the `i`-th fetched sample is computed.
    pub fn is_computed(&self, i: usize) -> bool {
        self.computed[i]
    }

    /// Iterate `(id, computed)` pairs in fetch order.
    pub fn iter(&self) -> impl Iterator<Item = (SampleId, bool)> + '_ {
        self.fetch_order
            .iter()
            .copied()
            .zip(self.computed.iter().copied())
    }
}

/// A per-epoch sample-selection policy.
///
/// Selectors are stateful (they may track the epoch they last planned) and
/// draw randomness from a caller-provided [`StdRng`] so runs stay
/// deterministic under a fixed seed.
pub trait Selector {
    /// Short policy name for reports (`"uniform"`, `"cis"`, `"iis"`).
    fn name(&self) -> &str;

    /// Plan the given epoch from current importance values.
    fn plan_epoch(&mut self, table: &ImportanceTable, epoch: Epoch, rng: &mut StdRng) -> EpochPlan;

    /// Expected fraction of the dataset fetched per epoch (1.0 unless the
    /// selector is I/O-oriented).
    fn fetch_fraction(&self) -> f64 {
        1.0
    }
}

/// The conventional sampler: every epoch fetches and computes every sample
/// in a fresh random order (global shuffle, §II-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformSelector;

impl UniformSelector {
    /// Create a uniform selector.
    pub fn new() -> Self {
        UniformSelector
    }
}

impl Selector for UniformSelector {
    fn name(&self) -> &str {
        "uniform"
    }

    fn plan_epoch(
        &mut self,
        table: &ImportanceTable,
        _epoch: Epoch,
        rng: &mut StdRng,
    ) -> EpochPlan {
        let mut order: Vec<SampleId> = (0..table.len()).map(SampleId).collect();
        order.shuffle(rng);
        EpochPlan::all_computed(order)
    }
}

/// Weighted sampling without replacement (Efraimidis–Spirakis): select `k`
/// ids with probability proportional to `weight + floor·mean(weight)`.
///
/// The exploration floor is *relative* to the current mean importance:
/// losses shrink by orders of magnitude as training converges, and an
/// absolute floor would gradually flatten the selection into uniform.
/// `keyed` is caller-owned scratch reused across epochs: at dataset scale
/// the key vector is the dominant per-epoch allocation, and the selectors
/// keep one alive instead of rebuilding it every plan. The scratch never
/// influences the result — it is cleared and refilled from the same RNG
/// draw sequence, so plans are identical to a fresh-allocation run.
fn weighted_subset(
    table: &ImportanceTable,
    k: usize,
    floor: f64,
    rng: &mut StdRng,
    keyed: &mut Vec<(f64, u64)>,
) -> Vec<SampleId> {
    let n = table.len() as usize;
    let k = k.min(n);
    let mean_w = (table.raw_values().iter().map(|w| w.max(0.0)).sum::<f64>() / n.max(1) as f64)
        .max(f64::MIN_POSITIVE);
    let abs_floor = floor * mean_w;
    // key = u^(1/w); the k largest keys form the weighted sample.
    keyed.clear();
    keyed.extend(table.raw_values().iter().enumerate().map(|(i, &w)| {
        let w = w.max(0.0) + abs_floor;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        (u.powf(1.0 / w), i as u64)
    }));
    keyed.select_nth_unstable_by(k.saturating_sub(1).min(n - 1), |a, b| {
        b.0.partial_cmp(&a.0)
            .expect("keys are finite")
            .then(a.1.cmp(&b.1))
    });
    keyed[..k].iter().map(|&(_, i)| SampleId(i)).collect()
}

/// I/O-oriented importance sampling (the paper's IIS, §III-A): before each
/// epoch, choose a weighted subset of samples from historical importance
/// values; only those are fetched and trained.
///
/// Epoch 0 is a full warm-up pass — importance values do not exist yet, and
/// every sample needs at least one observation.
///
/// # Examples
///
/// ```
/// use icache_sampling::{IisSelector, ImportanceTable, Selector};
/// use icache_types::{Epoch, SampleId, SeedSequence};
///
/// let mut t = ImportanceTable::new(100);
/// for i in 0..100 {
///     t.record_loss(SampleId(i), if i < 10 { 10.0 } else { 0.01 });
/// }
/// let mut sel = IisSelector::new(0.3)?;
/// let mut rng = SeedSequence::new(0).rng("iis");
/// let plan = sel.plan_epoch(&t, Epoch(1), &mut rng);
/// assert_eq!(plan.len(), 30);
/// assert_eq!(plan.computed_count(), 30);
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct IisSelector {
    fraction: f64,
    exploration_floor: f64,
    /// Reusable key buffer for [`weighted_subset`]; never observable.
    scratch: Vec<(f64, u64)>,
}

impl PartialEq for IisSelector {
    fn eq(&self, other: &Self) -> bool {
        // Scratch capacity is an implementation detail, not policy state.
        self.fraction == other.fraction && self.exploration_floor == other.exploration_floor
    }
}

impl IisSelector {
    /// Default weight floor (as a fraction of the mean importance)
    /// granting low-loss samples residual selection probability (sample
    /// diversity, §III-C).
    pub const DEFAULT_EXPLORATION_FLOOR: f64 = 0.05;

    /// Select `fraction` of the dataset per epoch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless `fraction` is in `(0, 1]`.
    pub fn new(fraction: f64) -> Result<Self> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(Error::invalid_config("fraction", "must be in (0, 1]"));
        }
        Ok(IisSelector {
            fraction,
            exploration_floor: Self::DEFAULT_EXPLORATION_FLOOR,
            scratch: Vec::new(),
        })
    }

    /// Override the exploration floor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the floor is negative or
    /// non-finite.
    pub fn with_exploration_floor(mut self, floor: f64) -> Result<Self> {
        if !(floor.is_finite() && floor >= 0.0) {
            return Err(Error::invalid_config(
                "exploration_floor",
                "must be finite and >= 0",
            ));
        }
        self.exploration_floor = floor;
        Ok(self)
    }

    /// The configured per-epoch fetch fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl Selector for IisSelector {
    fn name(&self) -> &str {
        "iis"
    }

    fn plan_epoch(&mut self, table: &ImportanceTable, epoch: Epoch, rng: &mut StdRng) -> EpochPlan {
        if epoch.0 == 0 {
            // Warm-up: visit everything once to initialise importance.
            let mut order: Vec<SampleId> = (0..table.len()).map(SampleId).collect();
            order.shuffle(rng);
            return EpochPlan::all_computed(order);
        }
        let k = ((table.len() as f64 * self.fraction).round() as usize).max(1);
        let mut chosen = weighted_subset(table, k, self.exploration_floor, rng, &mut self.scratch);
        chosen.shuffle(rng);
        EpochPlan::all_computed(chosen)
    }

    fn fetch_fraction(&self) -> f64 {
        self.fraction
    }
}

/// Computing-oriented importance sampling (the baseline `Base` uses this):
/// the *same* weighted subset is chosen for GPU computation, but every
/// sample is still fetched in shuffled order — so I/O volume is unchanged.
#[derive(Debug, Clone)]
pub struct CisSelector {
    fraction: f64,
    exploration_floor: f64,
    /// Reusable key buffer for [`weighted_subset`]; never observable.
    scratch: Vec<(f64, u64)>,
}

impl PartialEq for CisSelector {
    fn eq(&self, other: &Self) -> bool {
        self.fraction == other.fraction && self.exploration_floor == other.exploration_floor
    }
}

impl CisSelector {
    /// Compute `fraction` of the dataset per epoch (fetch everything).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless `fraction` is in `(0, 1]`.
    pub fn new(fraction: f64) -> Result<Self> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(Error::invalid_config("fraction", "must be in (0, 1]"));
        }
        Ok(CisSelector {
            fraction,
            exploration_floor: IisSelector::DEFAULT_EXPLORATION_FLOOR,
            scratch: Vec::new(),
        })
    }

    /// The configured per-epoch compute fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl Selector for CisSelector {
    fn name(&self) -> &str {
        "cis"
    }

    fn plan_epoch(&mut self, table: &ImportanceTable, epoch: Epoch, rng: &mut StdRng) -> EpochPlan {
        let mut order: Vec<SampleId> = (0..table.len()).map(SampleId).collect();
        order.shuffle(rng);
        if epoch.0 == 0 {
            return EpochPlan::all_computed(order);
        }
        let k = ((table.len() as f64 * self.fraction).round() as usize).max(1);
        let chosen = weighted_subset(table, k, self.exploration_floor, rng, &mut self.scratch);
        let mut mask = vec![false; table.len() as usize];
        for id in chosen {
            mask[id.index()] = true;
        }
        let computed: Vec<bool> = order.iter().map(|id| mask[id.index()]).collect();
        EpochPlan::new(order, computed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_types::SeedSequence;

    fn table_with_head_heavy_losses(n: u64, hot: u64) -> ImportanceTable {
        let mut t = ImportanceTable::new(n);
        for i in 0..n {
            t.record_loss(SampleId(i), if i < hot { 100.0 } else { 0.001 });
        }
        t
    }

    #[test]
    fn uniform_visits_every_sample_exactly_once() {
        let t = ImportanceTable::new(500);
        let mut sel = UniformSelector::new();
        let mut rng = SeedSequence::new(1).rng("u");
        let plan = sel.plan_epoch(&t, Epoch(3), &mut rng);
        assert_eq!(plan.len(), 500);
        assert_eq!(plan.computed_count(), 500);
        let mut seen: Vec<u64> = plan.fetch_order().iter().map(|i| i.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_shuffles_between_epochs() {
        let t = ImportanceTable::new(100);
        let mut sel = UniformSelector::new();
        let mut rng = SeedSequence::new(1).rng("u");
        let a = sel.plan_epoch(&t, Epoch(0), &mut rng);
        let b = sel.plan_epoch(&t, Epoch(1), &mut rng);
        assert_ne!(a.fetch_order(), b.fetch_order());
    }

    #[test]
    fn iis_warmup_epoch_fetches_everything() {
        let t = ImportanceTable::new(100);
        let mut sel = IisSelector::new(0.3).unwrap();
        let mut rng = SeedSequence::new(2).rng("i");
        let plan = sel.plan_epoch(&t, Epoch(0), &mut rng);
        assert_eq!(plan.len(), 100);
    }

    #[test]
    fn iis_later_epochs_fetch_fraction() {
        let t = table_with_head_heavy_losses(1000, 100);
        let mut sel = IisSelector::new(0.25).unwrap();
        let mut rng = SeedSequence::new(2).rng("i");
        let plan = sel.plan_epoch(&t, Epoch(1), &mut rng);
        assert_eq!(plan.len(), 250);
        assert_eq!(plan.computed_count(), 250);
    }

    #[test]
    fn iis_prefers_high_importance_samples() {
        let t = table_with_head_heavy_losses(1000, 100);
        let mut sel = IisSelector::new(0.2).unwrap();
        let mut rng = SeedSequence::new(3).rng("i");
        let plan = sel.plan_epoch(&t, Epoch(1), &mut rng);
        let hot = plan.fetch_order().iter().filter(|id| id.0 < 100).count();
        // 100 hot samples dominate the weights; expect the large majority
        // of the 200 selections to be hot.
        assert!(hot > 80, "only {hot} hot samples selected");
    }

    #[test]
    fn iis_selection_has_no_duplicates() {
        let t = table_with_head_heavy_losses(500, 50);
        let mut sel = IisSelector::new(0.5).unwrap();
        let mut rng = SeedSequence::new(4).rng("i");
        let plan = sel.plan_epoch(&t, Epoch(2), &mut rng);
        let mut ids: Vec<u64> = plan.fetch_order().iter().map(|i| i.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), plan.len());
    }

    #[test]
    fn exploration_floor_keeps_cold_samples_reachable() {
        let t = table_with_head_heavy_losses(1000, 10);
        let mut sel = IisSelector::new(0.5).unwrap();
        let mut rng = SeedSequence::new(5).rng("i");
        let plan = sel.plan_epoch(&t, Epoch(1), &mut rng);
        let cold = plan.fetch_order().iter().filter(|id| id.0 >= 10).count();
        assert!(
            cold > 400,
            "cold samples must still be explored, got {cold}"
        );
    }

    #[test]
    fn cis_fetches_everything_but_computes_fraction() {
        let t = table_with_head_heavy_losses(1000, 100);
        let mut sel = CisSelector::new(0.3).unwrap();
        let mut rng = SeedSequence::new(6).rng("c");
        let plan = sel.plan_epoch(&t, Epoch(1), &mut rng);
        assert_eq!(plan.len(), 1000, "CIS does not reduce fetches");
        assert_eq!(plan.computed_count(), 300);
        assert_eq!(sel.fetch_fraction(), 1.0);
    }

    #[test]
    fn selectors_are_deterministic_under_a_seed() {
        let t = table_with_head_heavy_losses(300, 30);
        let run = || {
            let mut sel = IisSelector::new(0.4).unwrap();
            let mut rng = SeedSequence::new(7).rng("d");
            sel.plan_epoch(&t, Epoch(1), &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn invalid_fractions_are_rejected() {
        assert!(IisSelector::new(0.0).is_err());
        assert!(IisSelector::new(1.5).is_err());
        assert!(CisSelector::new(-0.1).is_err());
        assert!(IisSelector::new(0.5)
            .unwrap()
            .with_exploration_floor(f64::NAN)
            .is_err());
    }

    #[test]
    fn plan_iter_pairs_ids_with_compute_flags() {
        let plan = EpochPlan::new(vec![SampleId(1), SampleId(2)], vec![true, false]);
        let v: Vec<(u64, bool)> = plan.iter().map(|(id, c)| (id.0, c)).collect();
        assert_eq!(v, vec![(1, true), (2, false)]);
        assert!(plan.is_computed(0));
        assert!(!plan.is_computed(1));
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_plan_vectors_panic() {
        let _ = EpochPlan::new(vec![SampleId(1)], vec![]);
    }
}
