//! Quick calibration probe (not a deliverable example).
use icache_sim::{Scenario, SystemKind};

fn main() {
    let frac = 0.2; // 10k CIFAR samples
    for kind in SystemKind::figure8_lineup() {
        let m = Scenario::cifar10(kind)
            .model(icache_dnn::ModelProfile::shufflenet())
            .scale_dataset(frac)
            .unwrap()
            .epochs(4)
            .run()
            .unwrap();
        println!(
            "{:10} epoch={:8.3}s stall={:8.3}s hit={:5.1}% fetched={:6} top1={:.2}",
            kind.label(),
            m.avg_epoch_time_steady().as_secs_f64(),
            m.avg_stall_time_steady().as_secs_f64(),
            m.avg_hit_ratio_steady() * 100.0,
            m.epochs[1].samples_fetched,
            m.final_top1(),
        );
    }
}
