//! Accuracy calibration with quality diagnostics.
use icache_sim::{Scenario, SystemKind};

fn main() {
    for kind in [
        SystemKind::Default,
        SystemKind::Quiver,
        SystemKind::CoorDl,
        SystemKind::Icache,
        SystemKind::IcacheNoSub,
        SystemKind::IcacheSubH,
    ] {
        let m = Scenario::cifar10(kind)
            .scale_dataset(0.1)
            .unwrap()
            .epochs(90)
            .run()
            .unwrap();
        let last = m.epochs.last().unwrap();
        let qbar: f64 = m.epochs.iter().map(|e| e.quality).sum::<f64>() / m.epochs.len() as f64;
        println!("{:12} top1={:6.2} top5={:6.2} qbar={:.3} cov={:.3} q={:.3} dist={:.3} subh={:.3} subl={:.3}",
            kind.label(), m.final_top1(), m.final_top5(), qbar,
            last.coverage, last.quality,
            last.distinct_trained as f64 / last.samples_trained.max(1) as f64,
            last.substitutions_h as f64 / last.samples_trained.max(1) as f64,
            last.substitutions_l as f64 / last.samples_trained.max(1) as f64);
    }
}
