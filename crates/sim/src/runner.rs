//! Run loops for single- and multi-job training.

use crate::{JobConfig, RunMetrics, TrainingJob};
use icache_core::CacheSystem;
use icache_obs::Observable;
use icache_storage::StorageBackend;
use icache_types::Result;

/// Run one job to completion against `cache` and `storage`.
///
/// # Errors
///
/// Returns [`icache_types::Error::InvalidConfig`] when the job
/// configuration is invalid.
///
/// # Examples
///
/// ```
/// use icache_baselines::LruCache;
/// use icache_dnn::ModelProfile;
/// use icache_sim::{run_single_job, JobConfig};
/// use icache_storage::LocalTier;
/// use icache_types::{ByteSize, Dataset, JobId};
///
/// let ds = Dataset::cifar10().scaled(0.01)?;
/// let mut cfg = JobConfig::new(JobId(0), ModelProfile::shufflenet(), ds.clone());
/// cfg.epochs = 2;
/// let mut cache = LruCache::new(ds.total_bytes().scaled(0.2));
/// let mut storage = LocalTier::tmpfs();
/// let metrics = run_single_job(cfg, &mut cache, &mut storage)?;
/// assert_eq!(metrics.epochs.len(), 2);
/// # Ok::<(), icache_types::Error>(())
/// ```
pub fn run_single_job(
    config: JobConfig,
    cache: &mut dyn CacheSystem,
    storage: &mut dyn StorageBackend,
) -> Result<RunMetrics> {
    run_single_job_with_obs(config, cache, storage, &icache_obs::Obs::noop())
}

/// [`run_single_job`] with an observability handle installed on both the
/// cache and the storage backend before the run starts.
///
/// Every layer records counters, latency histograms, and structured trace
/// events into `obs`; the trace is a pure function of the job config and
/// seed, so two runs with identical inputs produce byte-identical
/// [`icache_obs::Obs::trace_jsonl`] output.
///
/// # Errors
///
/// Returns [`icache_types::Error::InvalidConfig`] when the job
/// configuration is invalid.
pub fn run_single_job_with_obs(
    config: JobConfig,
    cache: &mut dyn CacheSystem,
    storage: &mut dyn StorageBackend,
    obs: &icache_obs::Obs,
) -> Result<RunMetrics> {
    cache.set_obs(obs.clone());
    storage.set_obs(obs.clone());
    let system = cache.name().to_string();
    let mut job = TrainingJob::new(config)?;
    job.set_obs(obs.clone());
    while job.step(cache, storage) {}
    Ok(job.into_metrics(&system))
}

/// Run several jobs concurrently against one shared cache and storage.
///
/// Jobs are interleaved by earliest virtual time, so storage-server and
/// cache contention between jobs emerges exactly as it would between
/// concurrent training processes on one machine (the Fig. 14 and Fig. 13
/// setups). Results come back in the order the configs were given.
///
/// # Errors
///
/// Returns [`icache_types::Error::InvalidConfig`] when any job
/// configuration is invalid (no job is run in that case).
pub fn run_multi_job(
    configs: Vec<JobConfig>,
    cache: &mut dyn CacheSystem,
    storage: &mut dyn StorageBackend,
) -> Result<Vec<RunMetrics>> {
    run_multi_job_with_obs(configs, cache, storage, &icache_obs::Obs::noop())
}

/// [`run_multi_job`] with an observability handle installed on the shared
/// cache and storage (see [`run_single_job_with_obs`]).
///
/// # Errors
///
/// Returns [`icache_types::Error::InvalidConfig`] when any job
/// configuration is invalid (no job is run in that case).
pub fn run_multi_job_with_obs(
    configs: Vec<JobConfig>,
    cache: &mut dyn CacheSystem,
    storage: &mut dyn StorageBackend,
    obs: &icache_obs::Obs,
) -> Result<Vec<RunMetrics>> {
    cache.set_obs(obs.clone());
    storage.set_obs(obs.clone());
    let system = cache.name().to_string();
    let mut jobs = configs
        .into_iter()
        .map(TrainingJob::new)
        .collect::<Result<Vec<_>>>()?;
    for job in &mut jobs {
        job.set_obs(obs.clone());
    }
    loop {
        let next = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.is_done())
            .min_by_key(|(_, j)| j.next_event_time())
            .map(|(i, _)| i);
        match next {
            Some(i) => {
                jobs[i].step(cache, storage);
            }
            None => break,
        }
    }
    Ok(jobs.into_iter().map(|j| j.into_metrics(&system)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplingMode;
    use icache_baselines::LruCache;
    use icache_dnn::ModelProfile;
    use icache_storage::{LocalTier, Pfs, PfsConfig};
    use icache_types::{ByteSize, Dataset, DatasetBuilder, JobId, SizeModel};

    fn dataset(n: u64) -> Dataset {
        DatasetBuilder::new("r", n)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    fn cfg(job: u32, n: u64) -> JobConfig {
        let mut c = JobConfig::new(JobId(job), ModelProfile::shufflenet(), dataset(n));
        c.batch_size = 32;
        c.epochs = 2;
        // Distinct seeds: concurrent jobs shuffle independently (two jobs
        // with the same seed would walk the dataset in lock-step and hit
        // each other's cache fills, which is not the paper's setup).
        c.seed = 42 + job as u64 * 1_000_003;
        c
    }

    #[test]
    fn single_job_runner_completes() {
        let mut cache = LruCache::new(ByteSize::kib(300));
        let mut st = LocalTier::tmpfs();
        let m = run_single_job(cfg(0, 320), &mut cache, &mut st).unwrap();
        assert_eq!(m.system, "lru");
        assert_eq!(m.epochs.len(), 2);
    }

    #[test]
    fn concurrent_jobs_contend_for_storage() {
        // One job alone vs the same job sharing storage with a twin:
        // the shared run must be slower per epoch.
        let solo = {
            let mut cache = LruCache::new(ByteSize::kib(100));
            let mut st = Pfs::new(PfsConfig::orangefs_default()).unwrap();
            run_single_job(cfg(0, 640), &mut cache, &mut st).unwrap()
        };
        let shared = {
            let mut cache = LruCache::new(ByteSize::kib(100));
            let mut st = Pfs::new(PfsConfig::orangefs_default()).unwrap();
            run_multi_job(vec![cfg(0, 640), cfg(1, 640)], &mut cache, &mut st).unwrap()
        };
        assert_eq!(shared.len(), 2);
        let solo_t = solo.avg_epoch_time();
        for m in &shared {
            assert!(
                m.avg_epoch_time() > solo_t,
                "shared {} vs solo {}",
                m.avg_epoch_time(),
                solo_t
            );
        }
    }

    #[test]
    fn sharded_jobs_split_the_epoch() {
        let mut a = cfg(0, 640);
        a.shard = Some((0, 2));
        let mut b = cfg(1, 640);
        b.shard = Some((1, 2));
        let mut cache = LruCache::new(ByteSize::kib(300));
        let mut st = LocalTier::tmpfs();
        let ms = run_multi_job(vec![a, b], &mut cache, &mut st).unwrap();
        for m in &ms {
            assert_eq!(m.epochs[0].samples_fetched, 320, "half the dataset each");
        }
    }

    #[test]
    fn iis_jobs_work_in_multi_job_mode() {
        let mut a = cfg(0, 320);
        a.sampling = SamplingMode::Iis { fraction: 0.5 };
        let mut b = cfg(1, 320);
        b.sampling = SamplingMode::Iis { fraction: 0.5 };
        let mut cache = LruCache::new(ByteSize::kib(100));
        let mut st = LocalTier::tmpfs();
        let ms = run_multi_job(vec![a, b], &mut cache, &mut st).unwrap();
        assert_eq!(ms[0].epochs[1].samples_fetched, 160);
        assert_eq!(ms[1].epochs[1].samples_fetched, 160);
    }

    #[test]
    fn invalid_shard_rejected() {
        let mut c = cfg(0, 32);
        c.shard = Some((2, 2));
        let mut cache = LruCache::new(ByteSize::kib(100));
        let mut st = LocalTier::tmpfs();
        assert!(run_single_job(c, &mut cache, &mut st).is_err());
    }
}
