//! The training-loop simulator.
//!
//! This crate drives complete DNN training runs over simulated time,
//! reproducing the paper's measurement methodology:
//!
//! * [`JobConfig`] / [`TrainingJob`] — one training job: a model profile,
//!   a sampling mode (uniform / CIS / IIS), a PyTorch-style prefetch
//!   pipeline with `W` blocking workers, loss-driven importance tracking,
//!   and per-epoch H-list pushes to the cache.
//! * [`run_single_job`] / [`run_multi_job`] — runners that own the shared
//!   storage backend and cache system and advance jobs batch by batch
//!   (multi-job interleaves by earliest virtual time, so storage and cache
//!   contention emerge naturally).
//! * [`EpochMetrics`] / [`RunMetrics`] — per-epoch wall/stall/compute
//!   times, hit ratios, I/O counters, and accuracy, exactly the quantities
//!   the paper's figures plot.
//! * [`Scenario`] and [`SystemKind`] — the §V-A configuration vocabulary
//!   (Default, Base, Quiver, CoorDL, iLFU, iCache, Oracle, and the
//!   Fig. 10 ablation variants) with the paper's defaults: 20 % cache,
//!   batch 256, 6 workers, OrangeFS with 4 servers and 64 KB stripes.
//! * [`report`] — aligned text tables and JSON lines for the bench
//!   binaries.
//!
//! # Examples
//!
//! ```
//! use icache_sim::{Scenario, SystemKind};
//!
//! // A fast, scaled-down run: ShuffleNet on 2% of CIFAR-10, 3 epochs.
//! let metrics = Scenario::cifar10(SystemKind::Icache)
//!     .model(icache_dnn::ModelProfile::shufflenet())
//!     .scale_dataset(0.02)?
//!     .epochs(3)
//!     .run()?;
//! assert_eq!(metrics.epochs.len(), 3);
//! # Ok::<(), icache_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod metrics;
mod perjob;
pub mod replay;
pub mod report;
mod runner;
mod scenario;
mod trace;

pub use job::{JobConfig, SamplingMode, TrainingJob};
pub use metrics::{EpochMetrics, RunMetrics};
pub use perjob::PerJobCache;
pub use runner::{run_multi_job, run_multi_job_with_obs, run_single_job, run_single_job_with_obs};
pub use scenario::{ChurnSpec, Scenario, StorageKind, SystemKind};
pub use trace::{FetchEvent, TracingCache};
