//! Report formatting for the bench binaries.
//!
//! Every bench prints (a) an aligned text table mirroring the paper's
//! figure/table, and (b) one JSON line per row so EXPERIMENTS.md numbers
//! are regenerable by machines.

/// An aligned text table builder.
///
/// # Examples
///
/// ```
/// use icache_sim::report::Table;
///
/// let mut t = Table::new(vec!["model".into(), "speedup".into()]);
/// t.row(vec!["shufflenet".into(), "2.3x".into()]);
/// let s = t.render();
/// assert!(s.contains("shufflenet"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Table::new(cols.iter().map(|c| c.to_string()).collect())
    }

    /// Append a row. Short rows are padded with empty cells; long rows
    /// extend the header with empty column names.
    pub fn row(&mut self, cells: Vec<String>) {
        while self.header.len() < cells.len() {
            self.header.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                out.push_str(&format!("{cell:width$}"));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Format a speedup like the paper: `2.3x`.
pub fn speedup(baseline_secs: f64, system_secs: f64) -> String {
    if system_secs <= 0.0 {
        return "inf".into();
    }
    format!("{:.2}x", baseline_secs / system_secs)
}

/// Format seconds with adaptive precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Format a ratio as percent.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Render a [`crate::RunMetrics`] as a plotting-ready CSV string
/// (one row per epoch).
pub fn run_metrics_csv(metrics: &crate::RunMetrics) -> String {
    let mut out = String::from(
        "epoch,wall_s,stall_s,compute_s,fetched,trained,hit_ratio,fetch_p50_us,fetch_p99_us,top1,top5\n",
    );
    for e in &metrics.epochs {
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{},{},{:.4},{:.1},{:.1},{:.2},{:.2}\n",
            e.epoch.0,
            e.wall_time.as_secs_f64(),
            e.stall_time.as_secs_f64(),
            e.compute_time.as_secs_f64(),
            e.samples_fetched,
            e.samples_trained,
            e.hit_ratio(),
            e.fetch_p50.as_micros_f64(),
            e.fetch_p99.as_micros_f64(),
            e.top1,
            e.top5
        ));
    }
    out
}

/// Emit one JSON result line (prefixed so it can be grepped out of bench
/// output).
pub fn json_line<T: icache_obs::ToJson + ?Sized>(tag: &str, value: &T) {
    println!("JSON {tag} {}", value.to_json());
}

/// Build the machine-readable run summary the bench binaries write for
/// `--json <path>`: per-job metrics plus the observability registry
/// (counters, gauges, latency histograms) and trace accounting.
///
/// The output is canonical — insertion-ordered objects, no timestamps —
/// so identical runs serialize to identical bytes.
pub fn run_summary(runs: &[crate::RunMetrics], obs: &icache_obs::Obs) -> icache_obs::Json {
    use icache_obs::{Json, ToJson};
    let jobs: Vec<Json> = runs.iter().map(|r| r.to_json()).collect();
    let events: Vec<(String, Json)> = obs
        .trace_event_counts()
        .into_iter()
        .map(|(name, n)| (name, n.to_json()))
        .collect();
    Json::Obj(vec![
        ("jobs".into(), Json::Arr(jobs)),
        ("metrics".into(), obs.metrics_snapshot()),
        (
            "trace".into(),
            Json::Obj(vec![
                ("emitted".into(), obs.trace_emitted().to_json()),
                ("recorded".into(), (obs.trace_len() as u64).to_json()),
                ("dropped".into(), obs.trace_dropped().to_json()),
                ("events".into(), Json::Obj(events)),
            ]),
        ),
    ])
}

/// [`run_summary`] for a distributed run: appends a `"nodes"` array with
/// the per-node hit/miss classification counters recorded by the
/// [`icache_core::DistributedCache`], one object per rank.
///
/// Every fetch lands in exactly one of the three buckets, so across the
/// array `local_hits + remote_hits + storage_fetches` sums to the total
/// sample fetches of the run.
pub fn run_summary_distributed(
    runs: &[crate::RunMetrics],
    obs: &icache_obs::Obs,
    nodes: usize,
) -> icache_obs::Json {
    use icache_obs::{Json, ToJson};
    let per_node: Vec<Json> = (0..nodes)
        .map(|i| {
            let c = |suffix: &str| obs.counter(&format!("dist.node{i}.{suffix}")).to_json();
            Json::Obj(vec![
                ("node".into(), (i as u64).to_json()),
                ("local_hits".into(), c("local_hits")),
                ("remote_hits".into(), c("remote_hits")),
                ("storage_fetches".into(), c("storage_fetches")),
            ])
        })
        .collect();
    match run_summary(runs, obs) {
        Json::Obj(mut fields) => {
            fields.push(("nodes".into(), Json::Arr(per_node)));
            Json::Obj(fields)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::with_columns(&["a", "bb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        t.row(vec!["z".into(), "wwww".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines equal width (trailing trimmed on shorter cells)
        assert!(lines[0].starts_with("a     bb"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::with_columns(&["a"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["x".into()]);
        let r = t.render();
        assert!(r.contains('3'));
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        use icache_types::{Epoch, SimDuration};
        let run = crate::RunMetrics {
            system: "x".into(),
            model: "m".into(),
            epochs: vec![crate::EpochMetrics {
                epoch: Epoch(0),
                wall_time: SimDuration::from_millis(10),
                stall_time: SimDuration::from_millis(4),
                compute_time: SimDuration::from_millis(6),
                fetch_time: SimDuration::ZERO,
                preprocess_time: SimDuration::ZERO,
                samples_fetched: 100,
                samples_trained: 100,
                served_from_cache: 30,
                distinct_trained: 100,
                substitutions_h: 0,
                substitutions_l: 0,
                cache: Default::default(),
                storage: Default::default(),
                fetch_p50: SimDuration::from_micros(50),
                fetch_p99: SimDuration::from_micros(900),
                coverage: 1.0,
                quality: 1.0,
                top1: 50.0,
                top5: 80.0,
            }],
        };
        let csv = run_metrics_csv(&run);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("epoch,wall_s"));
        assert!(csv.contains("0,0.010000,0.004000,0.006000,100,100"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(speedup(4.0, 2.0), "2.00x");
        assert_eq!(speedup(1.0, 0.0), "inf");
        assert_eq!(secs(0.5), "500.0ms");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(250.0), "250s");
        assert_eq!(pct(0.256), "25.6%");
    }
}
