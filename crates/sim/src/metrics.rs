//! Run metrics.

use icache_core::CacheStats;
use icache_storage::StorageStats;
use icache_types::{Epoch, SimDuration};

/// Everything measured about one training epoch of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Which epoch this is.
    pub epoch: Epoch,
    /// Wall-clock (virtual) time from epoch start to last batch trained.
    pub wall_time: SimDuration,
    /// GPU idle time waiting for data (the paper's data-stall / I/O time).
    pub stall_time: SimDuration,
    /// GPU busy time.
    pub compute_time: SimDuration,
    /// Total time workers spent fetching samples (loader view, overlaps
    /// with compute).
    pub fetch_time: SimDuration,
    /// Total time workers spent preprocessing samples.
    pub preprocess_time: SimDuration,
    /// Samples fetched this epoch.
    pub samples_fetched: u64,
    /// Samples trained on the GPU this epoch.
    pub samples_trained: u64,
    /// Fetches served from cache (hits + substitutions), counted from this
    /// job's own requests — exact even when several jobs share one cache.
    pub served_from_cache: u64,
    /// Distinct samples trained this epoch.
    pub distinct_trained: u64,
    /// Trained samples that were substitutes drawn from the H-sample set.
    pub substitutions_h: u64,
    /// Trained samples that were substitutes drawn from the L-sample set.
    pub substitutions_l: u64,
    /// Cache-counter deltas for this epoch.
    pub cache: CacheStats,
    /// Storage-counter deltas for this epoch.
    pub storage: StorageStats,
    /// Median per-sample fetch latency seen by the loader this epoch.
    pub fetch_p50: SimDuration,
    /// 99th-percentile per-sample fetch latency this epoch (tail stalls).
    pub fetch_p99: SimDuration,
    /// Loss-mass coverage of this epoch's distinct trained set.
    pub coverage: f64,
    /// The scalar epoch-quality factor fed to the accuracy model.
    pub quality: f64,
    /// Top-1 accuracy (%) at the end of this epoch.
    pub top1: f64,
    /// Top-5 accuracy (%) at the end of this epoch.
    pub top5: f64,
}

impl EpochMetrics {
    /// The paper's cache hit ratio (substitutions count as hits).
    pub fn hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// Hit ratio computed from this job's own fetches — use this in
    /// multi-job runs where the shared cache's counters mix jobs.
    pub fn job_hit_ratio(&self) -> f64 {
        if self.samples_fetched == 0 {
            0.0
        } else {
            self.served_from_cache as f64 / self.samples_fetched as f64
        }
    }

    /// Fraction of wall time the GPU sat waiting for data.
    pub fn stall_fraction(&self) -> f64 {
        self.stall_time.ratio(self.wall_time)
    }
}

/// The full trace of one training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMetrics {
    /// System name the run used (`"icache"`, `"lru"`, …).
    pub system: String,
    /// Model name.
    pub model: String,
    /// Per-epoch measurements.
    pub epochs: Vec<EpochMetrics>,
}

impl RunMetrics {
    /// Average wall time per epoch (the paper's headline metric).
    pub fn avg_epoch_time(&self) -> SimDuration {
        if self.epochs.is_empty() {
            return SimDuration::ZERO;
        }
        self.epochs.iter().map(|e| e.wall_time).sum::<SimDuration>() / self.epochs.len() as u64
    }

    /// Average wall time per epoch excluding the warm-up epoch 0 (IIS
    /// fetches the whole dataset in epoch 0, so steady-state comparisons
    /// drop it).
    pub fn avg_epoch_time_steady(&self) -> SimDuration {
        if self.epochs.len() <= 1 {
            return self.avg_epoch_time();
        }
        let tail = &self.epochs[1..];
        tail.iter().map(|e| e.wall_time).sum::<SimDuration>() / tail.len() as u64
    }

    /// Average data-stall (I/O) time per epoch, excluding warm-up.
    pub fn avg_stall_time_steady(&self) -> SimDuration {
        if self.epochs.len() <= 1 {
            return self
                .epochs
                .first()
                .map(|e| e.stall_time)
                .unwrap_or(SimDuration::ZERO);
        }
        let tail = &self.epochs[1..];
        tail.iter().map(|e| e.stall_time).sum::<SimDuration>() / tail.len() as u64
    }

    /// Mean cache hit ratio over steady-state epochs.
    pub fn avg_hit_ratio_steady(&self) -> f64 {
        let tail: &[EpochMetrics] = if self.epochs.len() <= 1 {
            &self.epochs
        } else {
            &self.epochs[1..]
        };
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|e| e.hit_ratio()).sum::<f64>() / tail.len() as f64
    }

    /// Final top-1 accuracy.
    pub fn final_top1(&self) -> f64 {
        self.epochs.last().map(|e| e.top1).unwrap_or(0.0)
    }

    /// Final top-5 accuracy.
    pub fn final_top5(&self) -> f64 {
        self.epochs.last().map(|e| e.top5).unwrap_or(0.0)
    }

    /// Total virtual time of the whole run.
    pub fn total_time(&self) -> SimDuration {
        self.epochs.iter().map(|e| e.wall_time).sum()
    }
}

impl icache_obs::ToJson for EpochMetrics {
    fn to_json(&self) -> icache_obs::Json {
        icache_obs::json!({
            "epoch": self.epoch.0,
            "wall_s": self.wall_time.as_secs_f64(),
            "stall_s": self.stall_time.as_secs_f64(),
            "compute_s": self.compute_time.as_secs_f64(),
            "fetch_s": self.fetch_time.as_secs_f64(),
            "preprocess_s": self.preprocess_time.as_secs_f64(),
            "samples_fetched": self.samples_fetched,
            "samples_trained": self.samples_trained,
            "served_from_cache": self.served_from_cache,
            "distinct_trained": self.distinct_trained,
            "substitutions_h": self.substitutions_h,
            "substitutions_l": self.substitutions_l,
            "cache": self.cache,
            "storage": self.storage,
            "fetch_p50_us": self.fetch_p50.as_micros_f64(),
            "fetch_p99_us": self.fetch_p99.as_micros_f64(),
            "coverage": self.coverage,
            "quality": self.quality,
            "top1": self.top1,
            "top5": self.top5,
        })
    }
}

impl icache_obs::ToJson for RunMetrics {
    fn to_json(&self) -> icache_obs::Json {
        icache_obs::json!({
            "system": self.system,
            "model": self.model,
            "epochs": self.epochs,
            "avg_epoch_s": self.avg_epoch_time().as_secs_f64(),
            "avg_epoch_steady_s": self.avg_epoch_time_steady().as_secs_f64(),
            "avg_stall_steady_s": self.avg_stall_time_steady().as_secs_f64(),
            "avg_hit_ratio_steady": self.avg_hit_ratio_steady(),
            "final_top1": self.final_top1(),
            "final_top5": self.final_top5(),
            "total_s": self.total_time().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(e: u32, wall_us: u64, stall_us: u64, top1: f64) -> EpochMetrics {
        EpochMetrics {
            epoch: Epoch(e),
            wall_time: SimDuration::from_micros(wall_us),
            stall_time: SimDuration::from_micros(stall_us),
            compute_time: SimDuration::ZERO,
            fetch_time: SimDuration::ZERO,
            preprocess_time: SimDuration::ZERO,
            samples_fetched: 0,
            samples_trained: 0,
            served_from_cache: 0,
            distinct_trained: 0,
            substitutions_h: 0,
            substitutions_l: 0,
            cache: CacheStats::default(),
            storage: StorageStats::default(),
            fetch_p50: SimDuration::ZERO,
            fetch_p99: SimDuration::ZERO,
            coverage: 1.0,
            quality: 1.0,
            top1,
            top5: 0.0,
        }
    }

    #[test]
    fn averages_skip_warmup_in_steady_variants() {
        let run = RunMetrics {
            system: "x".into(),
            model: "m".into(),
            epochs: vec![
                epoch(0, 100, 50, 10.0),
                epoch(1, 10, 5, 20.0),
                epoch(2, 20, 5, 30.0),
            ],
        };
        assert_eq!(run.avg_epoch_time(), SimDuration::from_nanos(43_333));
        assert_eq!(run.avg_epoch_time_steady(), SimDuration::from_micros(15));
        assert_eq!(run.avg_stall_time_steady(), SimDuration::from_micros(5));
        assert_eq!(run.final_top1(), 30.0);
        assert_eq!(run.total_time(), SimDuration::from_micros(130));
    }

    #[test]
    fn empty_run_is_safe() {
        let run = RunMetrics::default();
        assert_eq!(run.avg_epoch_time(), SimDuration::ZERO);
        assert_eq!(run.final_top1(), 0.0);
        assert_eq!(run.avg_hit_ratio_steady(), 0.0);
    }

    #[test]
    fn stall_fraction_is_bounded() {
        let e = epoch(0, 100, 40, 0.0);
        assert!((e.stall_fraction() - 0.4).abs() < 1e-12);
    }
}
