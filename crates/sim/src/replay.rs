//! Trace replay: drive any cache system with a raw access trace.
//!
//! Training-loop simulation answers "how fast does the job run"; replay
//! answers the narrower cache-design question "how does this policy
//! behave under this reference stream", the way classic cache simulators
//! do. Traces come from three sources:
//!
//! * recorded [`crate::TracingCache`] JSONL (via [`Trace::parse_jsonl`]);
//! * synthetic generators ([`AccessPattern`]) — uniform, Zipfian,
//!   sequential scan, and epoch-shuffle (the DNN pattern);
//! * hand-built [`Trace`]s in tests.

use icache_core::{
    CacheStats, CacheSystem, ConcurrentCache, PlannedAccess, PrefetchPipeline, PrefetchReport,
};
use icache_storage::StorageBackend;
use icache_types::{
    Dataset, Error, JobId, LatencyHistogram, Result, SampleId, SeedSequence, SimDuration, SimTime,
};
use rand::seq::SliceRandom;
use rand::Rng;

/// One access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Requesting job.
    pub job: JobId,
    /// Requested sample.
    pub sample: SampleId,
}

/// An access trace over a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Build from raw records.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// The accesses in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Parse the JSONL format emitted by
    /// [`crate::TracingCache::to_jsonl`] (fields `job` and `requested`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on malformed lines.
    pub fn parse_jsonl(input: &str) -> Result<Trace> {
        let mut records = Vec::new();
        for (lineno, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = icache_obs::Json::parse(line)
                .map_err(|e| Error::invalid_config("trace", format!("line {}: {e}", lineno + 1)))?;
            let job = v["job"].as_u64().ok_or_else(|| {
                Error::invalid_config("trace", format!("line {}: missing `job`", lineno + 1))
            })?;
            let sample = v["requested"].as_u64().ok_or_else(|| {
                Error::invalid_config("trace", format!("line {}: missing `requested`", lineno + 1))
            })?;
            records.push(TraceRecord {
                job: JobId(job as u32),
                sample: SampleId(sample),
            });
        }
        Ok(Trace { records })
    }
}

/// Synthetic access-pattern generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Independent uniform draws.
    Uniform,
    /// Zipf-distributed draws with the given skew `s > 0` (1.0 ≈ classic
    /// web/cache skew). Popular ids are the low ids.
    Zipf {
        /// Skew exponent.
        s: f64,
    },
    /// Repeated sequential scans of the dataset (the cache-adversarial
    /// pattern).
    Scan,
    /// Per-epoch random permutations — the DNN training pattern (§II-A).
    EpochShuffle,
}

impl AccessPattern {
    /// Generate `n` accesses over `universe` samples for `job`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an empty universe or a
    /// non-positive Zipf skew.
    pub fn generate(self, universe: u64, n: usize, job: JobId, seed: u64) -> Result<Trace> {
        if universe == 0 {
            return Err(Error::invalid_config("universe", "must be non-empty"));
        }
        let mut rng = SeedSequence::new(seed).rng("trace-gen");
        let mut records = Vec::with_capacity(n);
        match self {
            AccessPattern::Uniform => {
                for _ in 0..n {
                    records.push(TraceRecord {
                        job,
                        sample: SampleId(rng.gen_range(0..universe)),
                    });
                }
            }
            AccessPattern::Zipf { s } => {
                if !(s > 0.0 && s.is_finite()) {
                    return Err(Error::invalid_config("s", "zipf skew must be positive"));
                }
                // Precomputed CDF + binary search. Universe capped for the
                // table; ids above the cap occur with ~zero probability
                // under any practical skew anyway.
                let m = universe.min(1_000_000) as usize;
                let mut cdf = Vec::with_capacity(m);
                let mut acc = 0.0;
                for k in 1..=m {
                    acc += 1.0 / (k as f64).powf(s);
                    cdf.push(acc);
                }
                let total = acc;
                for _ in 0..n {
                    let u: f64 = rng.gen_range(0.0..total);
                    let idx = cdf.partition_point(|&c| c < u);
                    records.push(TraceRecord {
                        job,
                        sample: SampleId(idx as u64),
                    });
                }
            }
            AccessPattern::Scan => {
                for i in 0..n {
                    records.push(TraceRecord {
                        job,
                        sample: SampleId(i as u64 % universe),
                    });
                }
            }
            AccessPattern::EpochShuffle => {
                let mut order: Vec<u64> = (0..universe).collect();
                let mut i = 0;
                while records.len() < n {
                    if i == 0 {
                        order.shuffle(&mut rng);
                    }
                    records.push(TraceRecord {
                        job,
                        sample: SampleId(order[i]),
                    });
                    i = (i + 1) % order.len();
                }
            }
        }
        Ok(Trace { records })
    }
}

/// The outcome of replaying a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Cache counters accumulated over the replay.
    pub stats: CacheStats,
    /// Per-access service latency distribution.
    pub latency: LatencyHistogram,
    /// Virtual time consumed by the replay.
    pub elapsed: SimDuration,
}

impl ReplayReport {
    /// The paper-style hit ratio of the replay.
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }
}

/// Replay `trace` through `cache` against `storage`, back to back (each
/// access submits when the previous completes).
pub fn replay(
    trace: &Trace,
    dataset: &Dataset,
    cache: &mut dyn CacheSystem,
    storage: &mut dyn StorageBackend,
) -> ReplayReport {
    let mut now = SimTime::ZERO;
    let mut latency = LatencyHistogram::new();
    let start_stats = cache.stats();
    for r in &trace.records {
        let size = dataset.sample_size(r.sample);
        // The sequential clock only moves forward, so the storage model
        // may retire queue bookings from the virtual past.
        storage.release_before(now);
        let f = cache.fetch(r.job, r.sample, size, now, storage);
        latency.record(f.ready_at.saturating_since(now));
        now = f.ready_at;
    }
    ReplayReport {
        stats: cache.stats().delta_since(&start_stats),
        latency,
        elapsed: now.saturating_since(SimTime::ZERO),
    }
}

/// Replay `trace` through a shared [`ConcurrentCache`] on `threads`
/// loader threads.
///
/// The trace is partitioned round-robin (record `i` goes to thread
/// `i % threads`), mirroring how a DNN data loader splits one epoch's
/// index list across workers. Each thread owns its storage backend
/// (built by `make_storage` inside the thread), its RNG stream
/// (derived from `seed` and the thread index), and its virtual clock;
/// the cache is the only shared state. The report's `elapsed` is the
/// *slowest* thread's clock — the batch is ready when the last worker
/// is — and the latency histogram is the merge of all threads'.
///
/// With `threads == 1` this visits records in exactly the sequential
/// [`replay`] order. With more threads the per-access results depend
/// on the interleaving, so runs are reproducible only given the same
/// thread schedule; counters still sum exactly (see
/// `icache_core::AtomicCacheStats`).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] when `threads == 0`, and
/// propagates `make_storage` failures. A panicking loader thread
/// surfaces as [`Error::InvalidState`] rather than poisoning the
/// caller.
pub fn replay_concurrent<F>(
    trace: &Trace,
    dataset: &Dataset,
    cache: &dyn ConcurrentCache,
    threads: usize,
    seed: u64,
    make_storage: F,
) -> Result<ReplayReport>
where
    F: Fn() -> Result<Box<dyn StorageBackend>> + Sync,
{
    if threads == 0 {
        return Err(Error::invalid_config(
            "threads",
            "need at least one loader thread",
        ));
    }
    let start_stats = cache.stats();
    let mut shards: Vec<Vec<TraceRecord>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, r) in trace.records.iter().enumerate() {
        shards[i % threads].push(*r);
    }
    let make_storage = &make_storage;
    let per_thread: Vec<Result<(LatencyHistogram, SimTime)>> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(t, records)| {
                s.spawn(move || -> Result<(LatencyHistogram, SimTime)> {
                    let mut storage = make_storage()?;
                    let mut rng = SeedSequence::new(seed).rng(&format!("loader{t}"));
                    let mut now = SimTime::ZERO;
                    let mut latency = LatencyHistogram::new();
                    for r in records {
                        let size = dataset.sample_size(r.sample);
                        // Thread-local storage + monotone thread-local
                        // clock: safe to retire the virtual past.
                        storage.release_before(now);
                        let f = cache.fetch(r.job, r.sample, size, now, storage.as_mut(), &mut rng);
                        latency.record(f.ready_at.saturating_since(now));
                        now = f.ready_at;
                    }
                    Ok((latency, now))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(Error::InvalidState("loader thread panicked".into())))
            })
            .collect()
    });
    let mut latency = LatencyHistogram::new();
    let mut elapsed = SimTime::ZERO;
    for r in per_thread {
        let (hist, now) = r?;
        latency.merge(&hist);
        elapsed = elapsed.max(now);
    }
    Ok(ReplayReport {
        stats: cache.stats().delta_since(&start_stats),
        latency,
        elapsed: elapsed.saturating_since(SimTime::ZERO),
    })
}

/// The outcome of a pipelined (compute/IO-overlapped) replay.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchReplayReport {
    /// The usual replay accounting. With prefetching the latency
    /// histogram records per-access *stall* (delivery minus request),
    /// not raw storage time, and `elapsed` includes per-sample compute.
    pub report: ReplayReport,
    /// Total time the consumer stalled waiting on data.
    pub stall: SimDuration,
    /// Prefetcher counters; all zero at depth 0 (no prefetcher runs).
    pub prefetch: PrefetchReport,
}

/// Replay `trace` with a simulated compute/IO overlap clock: the
/// consumer spends `compute` per sample, and a clairvoyant prefetcher
/// of lookahead `depth` issues the known access order ahead of it
/// (DESIGN.md §11), so per-access cost is `max(compute, stall)` instead
/// of `compute + fetch`.
///
/// `depth == 0` disables the prefetcher: every access is a demand fetch
/// whose full storage latency is a stall. The access *order* seen by
/// the cache is identical at every depth (plan order), so time-agnostic
/// policies count identically across depths; policies with time-paced
/// machinery (e.g. iCache's background package loader) may shift
/// because issue timestamps feed their pacing.
pub fn replay_prefetch(
    trace: &Trace,
    dataset: &Dataset,
    cache: &mut dyn CacheSystem,
    storage: &mut dyn StorageBackend,
    depth: usize,
    compute: SimDuration,
    obs: icache_obs::Obs,
) -> Result<PrefetchReplayReport> {
    let mut now = SimTime::ZERO;
    let mut latency = LatencyHistogram::new();
    let mut stall = SimDuration::ZERO;
    let start_stats = cache.stats();
    let prefetch = if depth == 0 {
        for r in &trace.records {
            let size = dataset.sample_size(r.sample);
            let f = cache.fetch(r.job, r.sample, size, now, storage);
            let wait = f.ready_at.saturating_since(now);
            latency.record(wait);
            stall += wait;
            now = f.ready_at + compute;
        }
        PrefetchReport::default()
    } else {
        let plan: Vec<PlannedAccess> = trace
            .records
            .iter()
            .map(|r| PlannedAccess {
                job: r.job,
                id: r.sample,
                size: dataset.sample_size(r.sample),
            })
            .collect();
        let mut pipe = PrefetchPipeline::new(depth, plan, SimTime::ZERO, obs)?;
        for pos in 0..trace.records.len() {
            let f = pipe.fetch(pos, now, cache, storage);
            let wait = f.ready_at.saturating_since(now);
            latency.record(wait);
            stall += wait;
            now = f.ready_at + compute;
        }
        pipe.finish()
    };
    Ok(PrefetchReplayReport {
        report: ReplayReport {
            stats: cache.stats().delta_since(&start_stats),
            latency,
            elapsed: now.saturating_since(SimTime::ZERO),
        },
        stall,
        prefetch,
    })
}

/// Convenience: a one-line summary string for reports.
pub fn summarize(report: &ReplayReport) -> String {
    format!(
        "hits {:.1}% | p50 {} | p99 {} | elapsed {}",
        report.hit_ratio() * 100.0,
        report.latency.quantile(0.5),
        report.latency.quantile(0.99),
        report.elapsed
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_baselines::LruCache;
    use icache_storage::LocalTier;
    use icache_types::{ByteSize, DatasetBuilder, SizeModel};

    fn dataset(n: u64) -> Dataset {
        DatasetBuilder::new("rp", n)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    #[test]
    fn zipf_concentrates_on_low_ids() {
        let t = AccessPattern::Zipf { s: 1.1 }
            .generate(10_000, 20_000, JobId(0), 7)
            .unwrap();
        let head = t.records().iter().filter(|r| r.sample.0 < 100).count();
        assert!(head > 8_000, "zipf head too light: {head}");
    }

    #[test]
    fn epoch_shuffle_visits_everything_once_per_epoch() {
        let t = AccessPattern::EpochShuffle
            .generate(50, 100, JobId(0), 7)
            .unwrap();
        let first: std::collections::HashSet<u64> =
            t.records()[..50].iter().map(|r| r.sample.0).collect();
        assert_eq!(first.len(), 50, "first epoch is a permutation");
    }

    #[test]
    fn lru_loves_zipf_and_hates_scans() {
        let ds = dataset(10_000);
        let cap = ds.total_bytes().scaled(0.1);

        let zipf = AccessPattern::Zipf { s: 1.1 }
            .generate(10_000, 30_000, JobId(0), 1)
            .unwrap();
        let mut lru = LruCache::new(cap);
        let mut st = LocalTier::tmpfs();
        let z = replay(&zipf, &ds, &mut lru, &mut st);

        let scan = AccessPattern::Scan
            .generate(10_000, 30_000, JobId(0), 1)
            .unwrap();
        let mut lru = LruCache::new(cap);
        let mut st = LocalTier::tmpfs();
        let s = replay(&scan, &ds, &mut lru, &mut st);

        assert!(z.hit_ratio() > 0.5, "zipf hit ratio {}", z.hit_ratio());
        assert!(s.hit_ratio() < 0.01, "scan hit ratio {}", s.hit_ratio());
        assert!(z.elapsed < s.elapsed);
    }

    #[test]
    fn jsonl_roundtrip_through_tracing_cache() {
        use crate::TracingCache;
        let ds = dataset(100);
        let mut traced = TracingCache::new(LruCache::new(ByteSize::kib(64)), 256);
        let mut st = LocalTier::tmpfs();
        let original = AccessPattern::Uniform
            .generate(100, 50, JobId(2), 3)
            .unwrap();
        replay(&original, &ds, &mut traced, &mut st);
        let parsed = Trace::parse_jsonl(&traced.to_jsonl()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Trace::parse_jsonl("not json").is_err());
        assert!(Trace::parse_jsonl("{\"job\":1}").is_err());
        assert!(Trace::parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn generators_validate_inputs() {
        assert!(AccessPattern::Uniform.generate(0, 10, JobId(0), 1).is_err());
        assert!(AccessPattern::Zipf { s: 0.0 }
            .generate(10, 10, JobId(0), 1)
            .is_err());
        assert!(AccessPattern::Zipf { s: f64::NAN }
            .generate(10, 10, JobId(0), 1)
            .is_err());
    }

    #[test]
    fn concurrent_replay_one_thread_matches_sequential() {
        use icache_core::MutexCache;
        let ds = dataset(500);
        let cap = ds.total_bytes().scaled(0.2);
        let t = AccessPattern::Zipf { s: 1.1 }
            .generate(500, 2_000, JobId(0), 9)
            .unwrap();

        let mut lru = LruCache::new(cap);
        let mut st = LocalTier::tmpfs();
        let seq = replay(&t, &ds, &mut lru, &mut st);

        let shared = MutexCache::new(Box::new(LruCache::new(cap)));
        let conc =
            replay_concurrent(&t, &ds, &shared, 1, 9, || Ok(Box::new(LocalTier::tmpfs()))).unwrap();
        assert_eq!(seq.stats, conc.stats);
        assert_eq!(seq.elapsed, conc.elapsed);
        assert_eq!(
            seq.latency.quantile(0.99),
            conc.latency.quantile(0.99),
            "one loader thread visits records in sequential order"
        );
    }

    #[test]
    fn concurrent_replay_counters_sum_across_threads() {
        use icache_core::MutexCache;
        let ds = dataset(500);
        let t = AccessPattern::Uniform
            .generate(500, 4_000, JobId(0), 5)
            .unwrap();
        let shared = MutexCache::new(Box::new(LruCache::new(ds.total_bytes().scaled(0.2))));
        let rep =
            replay_concurrent(&t, &ds, &shared, 4, 5, || Ok(Box::new(LocalTier::tmpfs()))).unwrap();
        assert_eq!(
            rep.stats.requests(),
            4_000,
            "per-thread fetches must add up exactly"
        );
        assert!(
            replay_concurrent(&t, &ds, &shared, 0, 5, || Ok(Box::new(LocalTier::tmpfs()))).is_err()
        );
    }

    #[test]
    fn prefetch_depth_zero_matches_demand_access_stream() {
        let ds = dataset(2_000);
        let cap = ds.total_bytes().scaled(0.1);
        let t = AccessPattern::Zipf { s: 1.1 }
            .generate(2_000, 6_000, JobId(0), 3)
            .unwrap();

        let mut lru = LruCache::new(cap);
        let mut st =
            icache_storage::Pfs::new(icache_storage::PfsConfig::orangefs_default()).unwrap();
        let seq = replay(&t, &ds, &mut lru, &mut st);

        let mut lru = LruCache::new(cap);
        let mut st =
            icache_storage::Pfs::new(icache_storage::PfsConfig::orangefs_default()).unwrap();
        let p0 = replay_prefetch(
            &t,
            &ds,
            &mut lru,
            &mut st,
            0,
            SimDuration::ZERO,
            icache_obs::Obs::noop(),
        )
        .unwrap();
        assert_eq!(seq.stats, p0.report.stats, "same access stream");
        assert_eq!(seq.elapsed, p0.report.elapsed, "zero compute, depth 0");
        assert_eq!(
            p0.stall, p0.report.elapsed,
            "with zero compute at depth 0 the whole replay is stall"
        );
        assert_eq!(p0.prefetch, icache_core::PrefetchReport::default());
    }

    #[test]
    fn prefetch_stall_non_increasing_in_depth() {
        let ds = dataset(2_000);
        let cap = ds.total_bytes().scaled(0.1);
        let t = AccessPattern::Zipf { s: 1.1 }
            .generate(2_000, 6_000, JobId(0), 3)
            .unwrap();
        let compute = SimDuration::from_micros(150);
        let mut stalls = Vec::new();
        let mut stats = Vec::new();
        for depth in [0usize, 1, 4, 16] {
            let mut lru = LruCache::new(cap);
            let mut st =
                icache_storage::Pfs::new(icache_storage::PfsConfig::orangefs_default()).unwrap();
            let rep = replay_prefetch(
                &t,
                &ds,
                &mut lru,
                &mut st,
                depth,
                compute,
                icache_obs::Obs::noop(),
            )
            .unwrap();
            if depth > 0 {
                assert_eq!(
                    rep.prefetch.hits + rep.prefetch.late,
                    t.len() as u64,
                    "conservation: every consumed access is a hit or late"
                );
                assert_eq!(rep.prefetch.issued, t.len() as u64);
                assert_eq!(rep.prefetch.cancelled, 0);
            }
            stalls.push(rep.stall);
            stats.push(rep.report.stats);
        }
        for s in &stats[1..] {
            assert_eq!(&stats[0], s, "cache behavior identical across depths");
        }
        for pair in stalls.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "stall must not increase with depth: {stalls:?}"
            );
        }
        assert!(
            *stalls.last().unwrap() < stalls[0],
            "deep lookahead hides some storage latency: {stalls:?}"
        );
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let ds = dataset(100);
        let mut lru = LruCache::new(ByteSize::kib(64));
        let mut st = LocalTier::tmpfs();
        let t = AccessPattern::Scan.generate(100, 100, JobId(0), 1).unwrap();
        let rep = replay(&t, &ds, &mut lru, &mut st);
        let s = summarize(&rep);
        assert!(s.contains("hits"));
        assert!(s.contains("p99"));
    }
}
