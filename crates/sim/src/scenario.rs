//! Canonical experiment scenarios (§V-A vocabulary).

use crate::{run_single_job, JobConfig, RunMetrics, SamplingMode};
use icache_baselines::{IlfuCache, LruCache, MinIoCache, OracleSource, QuiverCache};
use icache_core::{
    CacheService, CacheSystem, DistributedCache, DistributedConfig, IcacheConfig, IcacheManager,
    RecoveryMode, ServiceConfig, Substitution,
};
use icache_dnn::ModelProfile;
use icache_sampling::ImportanceCriterion;
use icache_storage::{LocalTier, Nfs, NfsConfig, Pfs, PfsConfig, StorageBackend};
use icache_types::{Dataset, Epoch, JobId, NodeId, Result, SimDuration};

/// The cache/sampling systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// **Default**: PyTorch + user-level LRU cache, uniform sampling.
    Default,
    /// **Base**: LRU cache + computing-oriented IS (CIS).
    Base,
    /// **+IIS** (Fig. 10): LRU cache + I/O-oriented IS.
    IisLru,
    /// **Quiver**: substitutability for any sample, chunked reads.
    Quiver,
    /// **CoorDL**: the MinIO never-evict cache.
    CoorDl,
    /// **iLFU**: IIS + an LFU cache.
    Ilfu,
    /// **+HC** (Fig. 10): iCache with the L-cache disabled.
    IcacheNoL,
    /// **iCache** (All): the full system.
    Icache,
    /// iCache with substitution disabled (`Def` in Table III).
    IcacheNoSub,
    /// iCache substituting L-misses from the H-cache (`ST_HC`, Table III).
    IcacheSubH,
    /// **Oracle**: the whole dataset in local DRAM.
    Oracle,
}

impl SystemKind {
    /// Report label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Default => "Default",
            SystemKind::Base => "Base",
            SystemKind::IisLru => "+IIS",
            SystemKind::Quiver => "Quiver",
            SystemKind::CoorDl => "CoorDL",
            SystemKind::Ilfu => "iLFU",
            SystemKind::IcacheNoL => "+HC",
            SystemKind::Icache => "iCache",
            SystemKind::IcacheNoSub => "iCache-Def",
            SystemKind::IcacheSubH => "iCache-STHC",
            SystemKind::Oracle => "Oracle",
        }
    }

    /// The sampling mode this system trains with.
    pub fn sampling(self, iis_fraction: f64, cis_fraction: f64) -> SamplingMode {
        match self {
            SystemKind::Default | SystemKind::Quiver | SystemKind::CoorDl | SystemKind::Oracle => {
                SamplingMode::Uniform
            }
            SystemKind::Base => SamplingMode::Cis {
                fraction: cis_fraction,
            },
            SystemKind::IisLru
            | SystemKind::Ilfu
            | SystemKind::IcacheNoL
            | SystemKind::Icache
            | SystemKind::IcacheNoSub
            | SystemKind::IcacheSubH => SamplingMode::Iis {
                fraction: iis_fraction,
            },
        }
    }

    /// The six-system comparison of Figure 8.
    pub fn figure8_lineup() -> Vec<SystemKind> {
        vec![
            SystemKind::Default,
            SystemKind::Base,
            SystemKind::Quiver,
            SystemKind::CoorDl,
            SystemKind::Ilfu,
            SystemKind::Icache,
            SystemKind::Oracle,
        ]
    }
}

/// Which storage substrate backs the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageKind {
    /// The paper's OrangeFS deployment (4 servers, 64 KB stripes).
    OrangeFs,
    /// The cloud NFS server of the distributed experiments.
    Nfs,
    /// Local DRAM tmpfs (the Fig. 2 motivation case).
    Tmpfs,
    /// Local NVMe SSD.
    NvmeSsd,
}

impl StorageKind {
    /// Build the backend.
    ///
    /// # Errors
    ///
    /// Returns [`icache_types::Error::InvalidConfig`] if a preset is
    /// invalid (cannot happen for the built-in presets).
    pub fn build(self) -> Result<Box<dyn StorageBackend>> {
        Ok(match self {
            StorageKind::OrangeFs => Box::new(Pfs::new(PfsConfig::orangefs_default())?),
            StorageKind::Nfs => Box::new(Nfs::new(NfsConfig::cloud_default())?),
            StorageKind::Tmpfs => Box::new(LocalTier::tmpfs()),
            StorageKind::NvmeSsd => Box::new(LocalTier::nvme_ssd()),
        })
    }
}

/// A complete single-job experiment configuration with the paper's §V-A
/// defaults, built fluently and run with [`Scenario::run`].
///
/// # Examples
///
/// ```
/// use icache_sim::{Scenario, SystemKind};
///
/// let m = Scenario::cifar10(SystemKind::Default)
///     .scale_dataset(0.02)?
///     .epochs(2)
///     .run()?;
/// assert_eq!(m.system, "lru");
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    system: SystemKind,
    storage: StorageKind,
    model: ModelProfile,
    dataset: Dataset,
    cache_fraction: f64,
    iis_fraction: f64,
    cis_fraction: f64,
    batch_size: usize,
    workers: usize,
    gpus: usize,
    epochs: u32,
    multi_job: bool,
    h_list_fraction: f64,
    criterion: ImportanceCriterion,
    seed: u64,
    prefetch_depth: usize,
}

impl Scenario {
    /// CIFAR-10 defaults: ResNet18, OrangeFS, 20 % cache, batch 256,
    /// 6 workers, 1 GPU, 5 epochs.
    pub fn cifar10(system: SystemKind) -> Scenario {
        Scenario {
            system,
            storage: StorageKind::OrangeFs,
            model: ModelProfile::resnet18(),
            dataset: Dataset::cifar10(),
            cache_fraction: 0.2,
            iis_fraction: 0.7,
            cis_fraction: 0.7,
            batch_size: 256,
            workers: 6,
            gpus: 1,
            epochs: 5,
            multi_job: false,
            h_list_fraction: 0.5,
            criterion: ImportanceCriterion::Loss,
            seed: 0x5EED,
            prefetch_depth: 0,
        }
    }

    /// ImageNet defaults: SqueezeNet on ImageNet-1K, otherwise as
    /// [`Scenario::cifar10`].
    pub fn imagenet(system: SystemKind) -> Scenario {
        let mut s = Scenario::cifar10(system);
        s.model = ModelProfile::squeezenet();
        s.dataset = Dataset::imagenet_1k();
        s
    }

    /// Swap the model.
    pub fn model(mut self, model: ModelProfile) -> Scenario {
        self.model = model;
        self
    }

    /// Swap the dataset outright.
    pub fn dataset(mut self, dataset: Dataset) -> Scenario {
        self.dataset = dataset;
        self
    }

    /// Scale the dataset down for affordable sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`icache_types::Error::InvalidConfig`] when `fraction` is
    /// not in `(0, 1]`.
    pub fn scale_dataset(mut self, fraction: f64) -> Result<Scenario> {
        self.dataset = self.dataset.scaled(fraction)?;
        Ok(self)
    }

    /// Set the cache size as a fraction of the dataset.
    pub fn cache_fraction(mut self, f: f64) -> Scenario {
        self.cache_fraction = f;
        self
    }

    /// Set the IIS per-epoch fetch fraction.
    pub fn iis_fraction(mut self, f: f64) -> Scenario {
        self.iis_fraction = f;
        self
    }

    /// Set the mini-batch size.
    pub fn batch_size(mut self, b: usize) -> Scenario {
        self.batch_size = b;
        self
    }

    /// Set the number of data-loader workers.
    pub fn workers(mut self, w: usize) -> Scenario {
        self.workers = w;
        self
    }

    /// Set the number of data-parallel GPUs.
    pub fn gpus(mut self, g: usize) -> Scenario {
        self.gpus = g;
        self
    }

    /// Set the number of epochs.
    pub fn epochs(mut self, e: u32) -> Scenario {
        self.epochs = e;
        self
    }

    /// Select the storage substrate.
    pub fn storage(mut self, s: StorageKind) -> Scenario {
        self.storage = s;
        self
    }

    /// Enable iCache's multi-job module (benefit probing + AIV).
    pub fn multi_job(mut self, on: bool) -> Scenario {
        self.multi_job = on;
        self
    }

    /// Set the fraction of the dataset treated as H-samples (the H-list).
    pub fn h_list_fraction(mut self, f: f64) -> Scenario {
        self.h_list_fraction = f;
        self
    }

    /// Select the importance criterion (§VI extension).
    pub fn criterion(mut self, c: ImportanceCriterion) -> Scenario {
        self.criterion = c;
        self
    }

    /// Set the run seed.
    pub fn seed(mut self, s: u64) -> Scenario {
        self.seed = s;
        self
    }

    /// Set the clairvoyant prefetch lookahead depth (DESIGN.md §11).
    /// Depth 0 — the default — disables the prefetch pipeline and is
    /// byte-identical to the pre-prefetch simulator.
    pub fn prefetch_depth(mut self, depth: usize) -> Scenario {
        self.prefetch_depth = depth;
        self
    }

    /// The dataset this scenario trains on.
    pub fn dataset_ref(&self) -> &Dataset {
        &self.dataset
    }

    /// The system under test.
    pub fn system_kind(&self) -> SystemKind {
        self.system
    }

    /// Build the cache system under test.
    ///
    /// # Errors
    ///
    /// Returns [`icache_types::Error::InvalidConfig`] for invalid cache
    /// fractions.
    pub fn build_cache(&self) -> Result<Box<dyn CacheSystem>> {
        let cap = self.dataset.total_bytes().scaled(self.cache_fraction);
        Ok(match self.system {
            SystemKind::Default | SystemKind::Base | SystemKind::IisLru => {
                Box::new(LruCache::new(cap))
            }
            SystemKind::Quiver => Box::new(QuiverCache::new(&self.dataset, cap, self.seed)?),
            SystemKind::CoorDl => Box::new(MinIoCache::new(cap)),
            SystemKind::Ilfu => Box::new(IlfuCache::new(cap)),
            SystemKind::Oracle => Box::new(OracleSource::new(self.dataset.total_bytes())),
            SystemKind::Icache
            | SystemKind::IcacheNoL
            | SystemKind::IcacheNoSub
            | SystemKind::IcacheSubH => {
                let mut cfg = IcacheConfig::for_dataset(&self.dataset, self.cache_fraction)?;
                cfg.seed = self.seed;
                cfg.multi_job = self.multi_job;
                match self.system {
                    SystemKind::IcacheNoL => cfg.enable_lcache = false,
                    SystemKind::IcacheNoSub => cfg.substitution = Substitution::None,
                    SystemKind::IcacheSubH => cfg.substitution = Substitution::FromH,
                    _ => {}
                }
                Box::new(IcacheManager::new(cfg, &self.dataset)?)
            }
        })
    }

    /// Build the storage backend.
    ///
    /// # Errors
    ///
    /// See [`StorageKind::build`].
    pub fn build_storage(&self) -> Result<Box<dyn StorageBackend>> {
        self.storage.build()
    }

    /// The job configuration this scenario runs.
    pub fn job_config(&self, job: JobId) -> JobConfig {
        let mut cfg = JobConfig::new(job, self.model.clone(), self.dataset.clone());
        cfg.batch_size = self.batch_size;
        cfg.workers = self.workers;
        cfg.gpus = self.gpus;
        cfg.epochs = self.epochs;
        cfg.sampling = self.system.sampling(self.iis_fraction, self.cis_fraction);
        cfg.h_list_fraction = self.h_list_fraction;
        cfg.criterion = self.criterion;
        cfg.seed = self.seed ^ (job.0 as u64).wrapping_mul(0x9E37_79B9);
        cfg.prefetch_depth = self.prefetch_depth;
        cfg
    }

    /// Run the scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from cache, storage, or job
    /// construction.
    pub fn run(&self) -> Result<RunMetrics> {
        let mut cache = self.build_cache()?;
        let mut storage = self.build_storage()?;
        run_single_job(self.job_config(JobId(0)), cache.as_mut(), storage.as_mut())
    }

    /// Run the scenario with an observability handle collecting metrics
    /// and structured trace events from every layer.
    ///
    /// The trace is deterministic: two runs of the same scenario with the
    /// same seed fill `obs` with byte-identical
    /// [`icache_obs::Obs::trace_jsonl`] output.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from cache, storage, or job
    /// construction.
    pub fn run_with_obs(&self, obs: &icache_obs::Obs) -> Result<RunMetrics> {
        let mut cache = self.build_cache()?;
        let mut storage = self.build_storage()?;
        crate::run_single_job_with_obs(
            self.job_config(JobId(0)),
            cache.as_mut(),
            storage.as_mut(),
            obs,
        )
    }

    /// Run the scenario on a [`DistributedCache`] cluster of `nodes`
    /// data-parallel ranks (§III-E), one sharded job per node, all sharing
    /// the scenario seed so the shards walk one common epoch plan.
    ///
    /// Only [`SystemKind::Icache`] has a distributed deployment; other
    /// systems are rejected. Rank 0 emits the `epoch_start`/`epoch_end`
    /// trace markers, so a trace split on `epoch_start` yields exactly
    /// [`Scenario::epochs`] segments.
    ///
    /// # Errors
    ///
    /// Returns [`icache_types::Error::InvalidConfig`] when `nodes < 2` or
    /// the system under test is not `Icache`, and propagates construction
    /// errors from the cluster, storage, or jobs.
    pub fn run_distributed_with_obs(
        &self,
        nodes: u32,
        obs: &icache_obs::Obs,
    ) -> Result<Vec<RunMetrics>> {
        if self.system != SystemKind::Icache {
            return Err(icache_types::Error::InvalidConfig {
                field: "system",
                reason: format!(
                    "distributed runs require the iCache system, got {:?}",
                    self.system
                ),
            });
        }
        if nodes < 2 {
            return Err(icache_types::Error::InvalidConfig {
                field: "nodes",
                reason: format!("a distributed run needs at least 2 nodes, got {nodes}"),
            });
        }
        let mut cluster = DistributedCache::new(
            DistributedConfig::for_dataset(&self.dataset, nodes as usize, self.cache_fraction)?,
            &self.dataset,
        )?;
        let mut storage = self.build_storage()?;
        let configs = (0..nodes)
            .map(|k| {
                let mut cfg = self.job_config(JobId(k));
                cfg.shard = Some((k, nodes));
                // Shards share one epoch plan: same seed on every rank.
                cfg.seed = self.seed;
                cfg
            })
            .collect();
        crate::run_multi_job_with_obs(configs, &mut cluster, storage.as_mut(), obs)
    }

    /// Like [`Scenario::run_distributed_with_obs`], but on the full
    /// [`CacheService`] with membership churn enabled: a heartbeat
    /// failure detector, directory repartitioning, and (optionally) a
    /// scheduled kill/rejoin of one node. Returns the service alongside
    /// the per-rank metrics so callers can assert on post-run cluster
    /// state (membership, directory ownership, recovery counters).
    ///
    /// # Errors
    ///
    /// Returns [`icache_types::Error::InvalidConfig`] when the system is
    /// not `Icache`, `nodes < 2`, or the churn spec names a node outside
    /// the cluster; propagates construction errors otherwise.
    pub fn run_distributed_churn_with_obs(
        &self,
        nodes: u32,
        churn: &ChurnSpec,
        obs: &icache_obs::Obs,
    ) -> Result<(Vec<RunMetrics>, CacheService)> {
        if self.system != SystemKind::Icache {
            return Err(icache_types::Error::InvalidConfig {
                field: "system",
                reason: format!(
                    "distributed runs require the iCache system, got {:?}",
                    self.system
                ),
            });
        }
        if nodes < 2 {
            return Err(icache_types::Error::InvalidConfig {
                field: "nodes",
                reason: format!("a distributed run needs at least 2 nodes, got {nodes}"),
            });
        }
        let dist =
            DistributedConfig::for_dataset(&self.dataset, nodes as usize, self.cache_fraction)?;
        let mut svc_cfg = ServiceConfig::from_distributed(&dist).with_churn();
        svc_cfg.race_fetches = churn.race;
        if let Some(latency) = churn.net_latency {
            svc_cfg.control.latency = latency;
            svc_cfg.data.latency = latency;
        }
        if let Some(dir) = &churn.recovery_dir {
            svc_cfg.recovery = RecoveryMode::Dir(dir.clone());
        }
        let mut service = CacheService::new(svc_cfg, &self.dataset)?;
        if let Some((node, epoch)) = churn.kill {
            if node >= nodes {
                return Err(icache_types::Error::InvalidConfig {
                    field: "kill",
                    reason: format!("cannot kill node {node} in a {nodes}-node cluster"),
                });
            }
            service.schedule_kill(NodeId(node), epoch);
            if churn.rejoin {
                service.schedule_rejoin(NodeId(node), Epoch(epoch.0 + 1), churn.warm);
            }
        }
        let mut storage = self.build_storage()?;
        let configs = (0..nodes)
            .map(|k| {
                let mut cfg = self.job_config(JobId(k));
                cfg.shard = Some((k, nodes));
                // Shards share one epoch plan: same seed on every rank.
                cfg.seed = self.seed;
                cfg
            })
            .collect();
        let metrics = crate::run_multi_job_with_obs(configs, &mut service, storage.as_mut(), obs)?;
        Ok((metrics, service))
    }
}

/// Membership-churn schedule for
/// [`Scenario::run_distributed_churn_with_obs`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnSpec {
    /// Crash this node mid-way through this epoch (the `--kill-node i@e`
    /// flag). `None` runs the churn machinery — heartbeats, detector,
    /// repartition-capable directory — with no actual failure.
    pub kill: Option<(u32, Epoch)>,
    /// Bring the killed node back at the start of the following epoch.
    pub rejoin: bool,
    /// Warm rejoin: replay the node's recovery index instead of
    /// restarting with an empty cache. Only meaningful with `rejoin`.
    pub warm: bool,
    /// Override both control- and data-plane link latency (the
    /// `--net-latency` flag); `None` keeps the facade-equivalent
    /// defaults (zero control latency, `remote_hop` data latency).
    pub net_latency: Option<SimDuration>,
    /// Race remote cache reads against a hedged local storage fetch.
    pub race: bool,
    /// Write recovery indexes as real files under this directory instead
    /// of the in-memory store.
    pub recovery_dir: Option<std::path::PathBuf>,
}

impl ChurnSpec {
    /// Kill `node` in `epoch` and rejoin it warm one epoch later — the
    /// canonical churn experiment.
    pub fn kill_and_rejoin(node: u32, epoch: u32) -> Self {
        ChurnSpec {
            kill: Some((node, Epoch(epoch))),
            rejoin: true,
            warm: true,
            ..ChurnSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(system: SystemKind) -> Scenario {
        Scenario::cifar10(system)
            .scale_dataset(0.02)
            .unwrap()
            .epochs(3)
            .batch_size(64)
    }

    #[test]
    fn every_system_kind_builds_and_runs() {
        for kind in [
            SystemKind::Default,
            SystemKind::Base,
            SystemKind::IisLru,
            SystemKind::Quiver,
            SystemKind::CoorDl,
            SystemKind::Ilfu,
            SystemKind::IcacheNoL,
            SystemKind::Icache,
            SystemKind::IcacheNoSub,
            SystemKind::IcacheSubH,
            SystemKind::Oracle,
        ] {
            let m = quick(kind)
                .run()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(m.epochs.len(), 3, "{kind:?}");
        }
    }

    #[test]
    fn icache_beats_default_on_remote_storage() {
        let default = quick(SystemKind::Default).run().unwrap();
        let icache = quick(SystemKind::Icache).run().unwrap();
        let speedup = default
            .avg_epoch_time_steady()
            .ratio(icache.avg_epoch_time_steady());
        assert!(speedup > 1.2, "speedup only {speedup:.2}x");
    }

    #[test]
    fn oracle_is_fastest() {
        let oracle = quick(SystemKind::Oracle).run().unwrap();
        let default = quick(SystemKind::Default).run().unwrap();
        assert!(oracle.avg_epoch_time() < default.avg_epoch_time());
        assert!(oracle.epochs.iter().all(|e| e.stall_time < e.wall_time));
    }

    #[test]
    fn iis_systems_fetch_less_than_uniform_systems() {
        let default = quick(SystemKind::Default).run().unwrap();
        let icache = quick(SystemKind::Icache).run().unwrap();
        assert!(
            icache.epochs[1].samples_fetched < default.epochs[1].samples_fetched,
            "IIS must fetch fewer samples"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SystemKind::Icache.label(), "iCache");
        assert_eq!(SystemKind::Default.label(), "Default");
        assert_eq!(SystemKind::figure8_lineup().len(), 7);
    }

    #[test]
    fn prefetch_depth_zero_matches_unpiped_run() {
        let base = quick(SystemKind::Icache).run().unwrap();
        let piped = quick(SystemKind::Icache).prefetch_depth(0).run().unwrap();
        assert_eq!(base, piped, "depth 0 must not perturb the simulation");
    }

    #[test]
    fn prefetch_reduces_stall_time() {
        // One loader worker so consumption follows plan order: the
        // lookahead window then slides cleanly (a multi-worker consumer
        // visits batch-strided positions and needs depth ≳ workers ×
        // batch_size before the window covers its working set).
        let demand = quick(SystemKind::Default).workers(1).run().unwrap();
        let piped = quick(SystemKind::Default)
            .workers(1)
            .prefetch_depth(8)
            .run()
            .unwrap();
        let stall = |m: &RunMetrics| m.epochs.iter().map(|e| e.stall_time).sum::<SimDuration>();
        assert!(
            stall(&piped) < stall(&demand),
            "lookahead 8 should hide stall: demand {} piped {}",
            stall(&demand),
            stall(&piped)
        );
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = quick(SystemKind::Icache).run().unwrap();
        let b = quick(SystemKind::Icache).run().unwrap();
        assert_eq!(a, b);
    }
}
