//! Per-job cache composition.

use icache_core::{CacheStats, CacheSystem, Fetch};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{ByteSize, Epoch, JobId, SampleId, SimTime};

/// Routes each job to its own private cache instance.
///
/// The paper's *Default* configuration in distributed and multi-node
/// experiments gives every node its own LRU cache with no coordination;
/// this adapter models exactly that while still exposing the single
/// [`CacheSystem`] interface the runners expect. Job `k` maps to cache
/// `k % caches.len()`.
///
/// # Examples
///
/// ```
/// use icache_baselines::LruCache;
/// use icache_core::CacheSystem;
/// use icache_sim::PerJobCache;
/// use icache_types::ByteSize;
///
/// let caches: Vec<Box<dyn CacheSystem>> = (0..2)
///     .map(|_| Box::new(LruCache::new(ByteSize::mib(1))) as Box<dyn CacheSystem>)
///     .collect();
/// let cluster = PerJobCache::new(caches);
/// assert_eq!(cluster.capacity(), ByteSize::mib(2));
/// ```
pub struct PerJobCache {
    caches: Vec<Box<dyn CacheSystem>>,
}

impl PerJobCache {
    /// Compose the given per-job caches.
    ///
    /// # Panics
    ///
    /// Panics if `caches` is empty.
    pub fn new(caches: Vec<Box<dyn CacheSystem>>) -> Self {
        assert!(
            !caches.is_empty(),
            "PerJobCache requires at least one cache"
        );
        PerJobCache { caches }
    }

    fn index(&self, job: JobId) -> usize {
        job.0 as usize % self.caches.len()
    }

    /// Number of composed caches.
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// True when holding no caches (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }
}

impl CacheSystem for PerJobCache {
    fn name(&self) -> &str {
        "per-job"
    }

    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let i = self.index(job);
        self.caches[i].fetch(job, id, size, now, storage)
    }

    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        let i = self.index(job);
        self.caches[i].update_hlist(job, hlist);
    }

    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        let i = self.index(job);
        self.caches[i].on_epoch_start(job, epoch);
    }

    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        let i = self.index(job);
        self.caches[i].on_epoch_end(job, epoch);
    }

    fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            total.h_hits += s.h_hits;
            total.l_hits += s.l_hits;
            total.pm_hits += s.pm_hits;
            total.substitutions += s.substitutions;
            total.misses += s.misses;
            total.insertions += s.insertions;
            total.evictions += s.evictions;
            total.rejections += s.rejections;
            total.bytes_from_cache += s.bytes_from_cache;
            total.bytes_from_storage += s.bytes_from_storage;
        }
        total
    }

    fn reset_stats(&mut self) {
        for c in &mut self.caches {
            c.reset_stats();
        }
    }

    fn used_bytes(&self) -> ByteSize {
        self.caches.iter().map(|c| c.used_bytes()).sum()
    }

    fn capacity(&self) -> ByteSize {
        self.caches.iter().map(|c| c.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_baselines::LruCache;
    use icache_storage::LocalTier;

    fn cluster(n: usize) -> PerJobCache {
        PerJobCache::new(
            (0..n)
                .map(|_| Box::new(LruCache::new(ByteSize::kib(64))) as Box<dyn CacheSystem>)
                .collect(),
        )
    }

    #[test]
    fn jobs_do_not_share_contents() {
        let mut pc = cluster(2);
        let mut st = LocalTier::tmpfs();
        let sz = ByteSize::kib(3);
        let a = pc.fetch(JobId(0), SampleId(1), sz, SimTime::ZERO, &mut st);
        // Job 1 asking for the same sample misses: separate caches.
        let b = pc.fetch(JobId(1), SampleId(1), sz, a.ready_at, &mut st);
        assert!(!b.outcome.served_from_cache());
        // Job 0 re-asking hits its own cache.
        let c = pc.fetch(JobId(0), SampleId(1), sz, b.ready_at, &mut st);
        assert!(c.outcome.served_from_cache());
    }

    #[test]
    fn stats_and_capacity_aggregate() {
        let mut pc = cluster(3);
        let mut st = LocalTier::tmpfs();
        for j in 0..3 {
            pc.fetch(
                JobId(j),
                SampleId(0),
                ByteSize::kib(3),
                SimTime::ZERO,
                &mut st,
            );
        }
        assert_eq!(pc.stats().misses, 3);
        assert_eq!(pc.capacity(), ByteSize::kib(192));
        pc.reset_stats();
        assert_eq!(pc.stats().requests(), 0);
        assert_eq!(pc.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn empty_composition_panics() {
        let _ = PerJobCache::new(Vec::new());
    }
}
