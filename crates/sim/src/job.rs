//! One training job over simulated time.

use crate::{EpochMetrics, RunMetrics};
use icache_core::{CacheSystem, FetchOutcome, PlannedAccess, PrefetchPipeline};
use icache_dnn::{AccuracyModel, EpochQuality, LossModel, LossModelConfig, ModelProfile};
use icache_obs::{Obs, Observable, TraceEvent};
use icache_sampling::{
    CisSelector, CriterionTable, EpochPlan, HList, IisSelector, ImportanceCriterion,
    ImportanceTable, Selector, UniformSelector,
};
use icache_storage::StorageBackend;
use icache_types::{
    Dataset, Epoch, Error, IdSet, JobId, LatencyHistogram, Result, SimDuration, SimTime,
};
use rand::rngs::StdRng;

/// How the job selects samples each epoch (§II-B/§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingMode {
    /// Conventional training: fetch and compute everything, shuffled.
    Uniform,
    /// Computing-oriented IS: fetch everything, compute a weighted subset.
    Cis {
        /// Fraction of samples computed per epoch.
        fraction: f64,
    },
    /// I/O-oriented IS (the paper's IIS): fetch and compute a weighted
    /// subset chosen before the epoch.
    Iis {
        /// Fraction of samples fetched (and computed) per epoch.
        fraction: f64,
    },
}

impl SamplingMode {
    fn build_selector(self) -> Result<Box<dyn Selector>> {
        Ok(match self {
            SamplingMode::Uniform => Box::new(UniformSelector::new()),
            SamplingMode::Cis { fraction } => Box::new(CisSelector::new(fraction)?),
            SamplingMode::Iis { fraction } => Box::new(IisSelector::new(fraction)?),
        })
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SamplingMode::Uniform => "uniform",
            SamplingMode::Cis { .. } => "cis",
            SamplingMode::Iis { .. } => "iis",
        }
    }
}

/// Configuration of one training job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Job identity (also selects the node in distributed runs).
    pub job: JobId,
    /// The DNN being trained.
    pub model: ModelProfile,
    /// The dataset being trained on.
    pub dataset: Dataset,
    /// Mini-batch size (paper default 256).
    pub batch_size: usize,
    /// Data-parallel GPUs (paper default 1).
    pub gpus: usize,
    /// Prefetching data-loader workers (paper default 6).
    pub workers: usize,
    /// Batches each worker may run ahead of training (PyTorch default 2).
    pub prefetch_factor: usize,
    /// Per-epoch sample selection policy.
    pub sampling: SamplingMode,
    /// Fraction of the dataset treated as H-samples (the H-list). The
    /// paper defines H-samples by importance, not by cache size; the top
    /// half of the importance ranking is the natural split (see DESIGN.md).
    pub h_list_fraction: f64,
    /// Number of epochs to run.
    pub epochs: u32,
    /// How observed losses are turned into importance values (§VI).
    pub criterion: ImportanceCriterion,
    /// Seed for all of this job's randomness.
    pub seed: u64,
    /// Clairvoyant prefetch lookahead depth (DESIGN.md §11): how many
    /// planned fetches the loader may run ahead of consumption. `0`
    /// disables the pipeline entirely — the job fetches on demand,
    /// byte-identical to the pre-prefetch simulator.
    pub prefetch_depth: usize,
    /// Data-parallel shard `(index, world_size)`: the job trains every
    /// `world_size`-th planned sample starting at `index` (PyTorch's
    /// `DistributedSampler`), and pays a gradient-synchronisation factor.
    /// `None` for single-node training.
    pub shard: Option<(u32, u32)>,
}

impl JobConfig {
    /// A job with the paper's §V-A defaults (batch 256, 6 workers, 1 GPU,
    /// uniform sampling, H-list covering the top half of the dataset).
    pub fn new(job: JobId, model: ModelProfile, dataset: Dataset) -> Self {
        JobConfig {
            job,
            model,
            dataset,
            batch_size: 256,
            gpus: 1,
            workers: 6,
            prefetch_factor: 2,
            sampling: SamplingMode::Uniform,
            h_list_fraction: 0.5,
            epochs: 5,
            criterion: ImportanceCriterion::Loss,
            seed: 42,
            prefetch_depth: 0,
            shard: None,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(Error::invalid_config("batch_size", "must be at least 1"));
        }
        if self.workers == 0 {
            return Err(Error::invalid_config("workers", "must be at least 1"));
        }
        if self.gpus == 0 {
            return Err(Error::invalid_config("gpus", "must be at least 1"));
        }
        if self.prefetch_factor == 0 {
            return Err(Error::invalid_config(
                "prefetch_factor",
                "must be at least 1",
            ));
        }
        if self.epochs == 0 {
            return Err(Error::invalid_config("epochs", "must be at least 1"));
        }
        if !(self.h_list_fraction >= 0.0 && self.h_list_fraction <= 1.0) {
            return Err(Error::invalid_config(
                "h_list_fraction",
                "must be in [0, 1]",
            ));
        }
        if let Some((idx, world)) = self.shard {
            if world == 0 || idx >= world {
                return Err(Error::invalid_config(
                    "shard",
                    "requires index < world_size",
                ));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct EpochAccum {
    stall: SimDuration,
    compute: SimDuration,
    fetch: SimDuration,
    preprocess: SimDuration,
    samples_fetched: u64,
    samples_trained: u64,
    served_from_cache: u64,
    subs_h: u64,
    subs_l: u64,
    fetch_latency: LatencyHistogram,
}

/// One data-loader worker: its virtual clock and the batch it is
/// currently assembling (batch index, next position within the batch).
#[derive(Debug, Clone, Copy)]
struct WorkerState {
    cur: SimTime,
    batch: Option<(usize, usize)>,
}

/// A training job advancing sample by sample over virtual time.
///
/// Reproduces the PyTorch pipeline the paper measures: `W` blocking
/// worker processes fetch whole batches round-robin (each at most
/// `prefetch_factor·W` batches ahead of the GPU), preprocess samples
/// serially, and hand batches to a single training stream whose idle gaps
/// are the *data stalls* of Figure 1. Worker fetches are interleaved in
/// virtual-time order (the earliest worker advances first), so concurrent
/// workers genuinely overlap on the shared storage queues.
///
/// Drive it with [`TrainingJob::step`] (one sample fetch per call) or run
/// it to completion via [`crate::run_single_job`].
pub struct TrainingJob {
    config: JobConfig,
    selector: Box<dyn Selector>,
    table: CriterionTable,
    loss_model: LossModel,
    accuracy: AccuracyModel,
    rng: StdRng,
    epoch: u32,
    current_hlist: HList,
    plan: Option<EpochPlan>,
    num_batches: usize,
    workers: Vec<WorkerState>,
    /// Clairvoyant prefetcher for the current epoch (depth > 0 only).
    prefetch: Option<PrefetchPipeline>,
    assign_next: usize,
    train_next: usize,
    batch_ready: Vec<Option<SimTime>>,
    computed_counts: Vec<u32>,
    batch_lens: Vec<u32>,
    train_done: Vec<SimTime>,
    gpu_free: SimTime,
    epoch_start: SimTime,
    distinct: IdSet,
    /// Per-sample expected losses snapshotted at epoch start; coverage is
    /// measured against these (end-of-epoch losses would bias against the
    /// very samples that were trained).
    start_losses: Vec<f64>,
    start_loss_mass: f64,
    accum: EpochAccum,
    cache_mark: icache_core::CacheStats,
    storage_mark: icache_storage::StorageStats,
    metrics: RunMetrics,
    done: bool,
    /// Shared observability handle; the job emits the epoch-boundary
    /// markers that let a trace be split without the run summary.
    obs: Obs,
}

impl TrainingJob {
    /// Build a job from its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero-sized knobs or fractions
    /// out of range.
    pub fn new(config: JobConfig) -> Result<Self> {
        config.validate()?;
        let seq = icache_types::SeedSequence::new(config.seed).child("job");
        let selector = config.sampling.build_selector()?;
        let n = config.dataset.len();
        Ok(TrainingJob {
            selector,
            table: CriterionTable::new(ImportanceTable::new(n), config.criterion),
            loss_model: LossModel::new(n, LossModelConfig::default(), seq.seed("loss")),
            accuracy: AccuracyModel::new(&config.model, seq.seed("accuracy")),
            rng: seq.rng("selector"),
            epoch: 0,
            current_hlist: HList::empty(n),
            plan: None,
            num_batches: 0,
            workers: vec![
                WorkerState {
                    cur: SimTime::ZERO,
                    batch: None
                };
                config.workers
            ],
            prefetch: None,
            assign_next: 0,
            train_next: 0,
            batch_ready: Vec::new(),
            computed_counts: Vec::new(),
            batch_lens: Vec::new(),
            train_done: Vec::new(),
            gpu_free: SimTime::ZERO,
            epoch_start: SimTime::ZERO,
            distinct: IdSet::new(n),
            start_losses: Vec::new(),
            start_loss_mass: 0.0,
            accum: EpochAccum::default(),
            cache_mark: Default::default(),
            storage_mark: Default::default(),
            metrics: RunMetrics {
                system: String::new(),
                model: config.model.name().to_string(),
                epochs: Vec::new(),
            },
            done: false,
            obs: Obs::noop(),
            config,
        })
    }

    /// Whether this job emits cluster-wide epoch markers: the unsharded
    /// case, or rank 0 of a sharded (data-parallel) run.
    fn emits_epoch_markers(&self) -> bool {
        self.config.shard.is_none_or(|(idx, _)| idx == 0)
    }

    /// The job's identity.
    pub fn id(&self) -> JobId {
        self.config.job
    }

    /// The job's configuration.
    pub fn config(&self) -> &JobConfig {
        &self.config
    }

    /// Whether every epoch has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The epoch currently in progress (or about to start).
    pub fn current_epoch(&self) -> Epoch {
        Epoch(self.epoch)
    }

    /// Read access to the raw loss-based importance table (for Fig. 3-style
    /// traces).
    pub fn importance_table(&self) -> &ImportanceTable {
        self.table.raw()
    }

    /// Read access to the criterion-scored importance view.
    pub fn criterion_table(&self) -> &CriterionTable {
        &self.table
    }

    /// Read access to the loss model.
    pub fn loss_model(&self) -> &LossModel {
        &self.loss_model
    }

    /// The accumulated run metrics (complete once [`Self::is_done`]).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume the job, returning its metrics with the system name filled.
    pub fn into_metrics(mut self, system: &str) -> RunMetrics {
        self.metrics.system = system.to_string();
        self.metrics
    }

    /// The virtual time at which this job will next do work — used by the
    /// multi-job runner to interleave jobs fairly.
    pub fn next_event_time(&self) -> SimTime {
        if self.done {
            return SimTime::from_nanos(u64::MAX);
        }
        if self.plan.is_none() {
            return self.gpu_free;
        }
        self.workers
            .iter()
            .filter(|w| w.batch.is_some())
            .map(|w| w.cur)
            .min()
            .unwrap_or(self.gpu_free)
    }

    fn begin_epoch(&mut self, cache: &mut dyn CacheSystem, storage: &dyn StorageBackend) {
        let epoch = Epoch(self.epoch);
        self.epoch_start = self.gpu_free;
        self.table.on_epoch_start(epoch);
        let scored = self.table.scored_table();
        // Plan the epoch first (it reads only the scored table and the
        // job's own RNG) so the epoch marker can carry the selected-sample
        // count and precede every cache-side event of the epoch.
        let mut plan = self.selector.plan_epoch(&scored, epoch, &mut self.rng);
        if let Some((idx, world)) = self.config.shard {
            // DistributedSampler: keep every world-th planned sample.
            let (order, computed): (Vec<_>, Vec<_>) = plan
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i as u32) % world == idx)
                .map(|(_, pair)| pair)
                .unzip();
            plan = EpochPlan::new(order, computed);
        }
        if self.emits_epoch_markers() {
            self.obs.emit(TraceEvent::EpochStart {
                job: self.config.job.0 as u64,
                epoch: self.epoch as u64,
                selected: plan.len() as u64,
            });
        }
        // Push the fresh H-list to the cache. During the warm-up epoch no
        // losses have been observed yet — every value is the optimistic
        // prior — so there is no H-list to publish and the cache serves as
        // a plain pass-through fill.
        if self.epoch > 0 {
            let hlist = HList::top_fraction(&scored, self.config.h_list_fraction);
            cache.update_hlist(self.config.job, &hlist);
            self.current_hlist = hlist;
        }
        cache.on_epoch_start(self.config.job, epoch);
        self.num_batches = plan.len().div_ceil(self.config.batch_size);
        let bs = self.config.batch_size;
        self.batch_lens = (0..self.num_batches)
            .map(|b| ((plan.len() - b * bs).min(bs)) as u32)
            .collect();
        // Arm the clairvoyant prefetcher over the (post-shard) plan: the
        // access order is now fully known, which is the whole premise.
        self.prefetch = if self.config.prefetch_depth > 0 {
            let planned: Vec<PlannedAccess> = plan
                .fetch_order()
                .iter()
                .map(|&id| PlannedAccess {
                    job: self.config.job,
                    id,
                    size: self.config.dataset.sample_size(id),
                })
                .collect();
            Some(
                PrefetchPipeline::new(
                    self.config.prefetch_depth,
                    planned,
                    self.epoch_start,
                    self.obs.clone(),
                )
                .expect("depth checked nonzero by the surrounding branch"),
            )
        } else {
            None
        };
        self.plan = Some(plan);
        self.assign_next = 0;
        self.train_next = 0;
        self.batch_ready = vec![None; self.num_batches];
        self.computed_counts = vec![0; self.num_batches];
        for w in &mut self.workers {
            w.cur = self.epoch_start.max(w.cur);
            w.batch = None;
        }
        self.train_done.clear();
        self.distinct.clear();
        self.start_losses = (0..self.config.dataset.len())
            .map(|i| self.loss_model.expected_loss(icache_types::SampleId(i)))
            .collect();
        self.start_loss_mass = self.start_losses.iter().sum();
        self.accum = EpochAccum::default();
        self.cache_mark = cache.stats();
        self.storage_mark = storage.stats();
    }

    /// Train every batch whose data is ready, in batch order.
    fn drain_trainable(&mut self) {
        while self.train_next < self.num_batches {
            let Some(ready) = self.batch_ready[self.train_next] else {
                break;
            };
            let b = self.train_next;
            let batch_len = self.batch_lens[b] as usize;
            let full = self
                .config
                .model
                .batch_compute_time(batch_len.max(1), self.config.gpus)
                .expect("validated batch/gpus");
            let compute_dur = match self.config.sampling {
                // CIS: forward pass on everything, backward only on the
                // selected subset (~35 % forward / 65 % backward split).
                SamplingMode::Cis { .. } => {
                    full * (0.35 + 0.65 * self.computed_counts[b] as f64 / batch_len.max(1) as f64)
                }
                _ => full,
            };
            // Gradient all-reduce overhead in data-parallel training.
            let compute_dur = match self.config.shard {
                Some((_, world)) if world > 1 => {
                    compute_dur * (1.0 + 0.06 * ((world - 1) as f64).sqrt())
                }
                _ => compute_dur,
            };
            let train_start = self.gpu_free.max(ready);
            self.accum.stall += train_start.saturating_since(self.gpu_free.max(self.epoch_start));
            self.gpu_free = train_start + compute_dur;
            self.accum.compute += compute_dur;
            self.train_done.push(self.gpu_free);
            self.train_next += 1;
        }
    }

    /// Hand fresh batches to idle workers, respecting the prefetch
    /// back-pressure window.
    fn assign_work(&mut self) {
        let window = self.config.workers * self.config.prefetch_factor;
        for w in 0..self.workers.len() {
            if self.workers[w].batch.is_some() || self.assign_next >= self.num_batches {
                continue;
            }
            let b = self.assign_next;
            let throttle = match b.checked_sub(window) {
                None => self.epoch_start,
                Some(i) if i < self.train_done.len() => self.train_done[i],
                Some(_) => continue, // gate not yet open; retry later
            };
            self.workers[w].batch = Some((b, 0));
            self.workers[w].cur = self.workers[w].cur.max(throttle).max(self.epoch_start);
            self.assign_next += 1;
        }
    }

    fn finish_epoch(&mut self, cache: &mut dyn CacheSystem, storage: &dyn StorageBackend) {
        let epoch = Epoch(self.epoch);
        if let Some(pipe) = self.prefetch.take() {
            // Counters and trace events were emitted as they happened;
            // finishing just settles leftover in-flight issues as
            // cancelled.
            let _ = pipe.finish();
        }
        cache.on_epoch_end(self.config.job, epoch);
        if self.emits_epoch_markers() {
            self.obs.emit(TraceEvent::EpochEnd {
                job: self.config.job.0 as u64,
                epoch: self.epoch as u64,
                fetched: self.accum.samples_fetched,
            });
        }

        // Epoch quality for the accuracy model.
        let trained = self.accum.samples_trained.max(1);
        let covered: f64 = self
            .distinct
            .iter()
            .map(|id| self.start_losses[id.index()])
            .sum();
        let mass = self.start_loss_mass.max(f64::MIN_POSITIVE);
        // Substitution harm depends on the sampler's intent: under uniform
        // sampling a random cached substitute barely changes the trained
        // distribution (Quiver's "negligible loss" claim holds), while
        // under importance sampling it breaks the distribution the IS
        // algorithm chose — substituting with over-trained H-samples most
        // of all (§V-E).
        let (subs_h, subs_l) = match self.config.sampling {
            SamplingMode::Uniform => (0.0, 0.25 * (self.accum.subs_h + self.accum.subs_l) as f64),
            _ => (self.accum.subs_h as f64, self.accum.subs_l as f64),
        };
        let quality = EpochQuality {
            loss_mass_coverage: (covered / mass).clamp(0.0, 1.0),
            distinct_fraction: self.distinct.len() as f64 / trained as f64,
            h_substitution_fraction: subs_h / trained as f64,
            l_substitution_fraction: subs_l / trained as f64,
        };
        let q_scalar = quality.q();
        let snap = self.accuracy.record_epoch(quality);

        self.metrics.epochs.push(EpochMetrics {
            epoch,
            wall_time: self.gpu_free.saturating_since(self.epoch_start),
            stall_time: self.accum.stall,
            compute_time: self.accum.compute,
            fetch_time: self.accum.fetch,
            preprocess_time: self.accum.preprocess,
            samples_fetched: self.accum.samples_fetched,
            samples_trained: self.accum.samples_trained,
            served_from_cache: self.accum.served_from_cache,
            distinct_trained: self.distinct.len() as u64,
            substitutions_h: self.accum.subs_h,
            substitutions_l: self.accum.subs_l,
            cache: cache.stats().delta_since(&self.cache_mark),
            storage: storage.stats().delta_since(&self.storage_mark),
            fetch_p50: self.accum.fetch_latency.quantile(0.5),
            fetch_p99: self.accum.fetch_latency.quantile(0.99),
            coverage: (covered / mass).clamp(0.0, 1.0),
            quality: q_scalar,
            top1: snap.top1,
            top5: snap.top5,
        });

        self.plan = None;
        self.epoch += 1;
        if self.epoch >= self.config.epochs {
            self.done = true;
        }
    }

    /// Advance by one sample fetch (starting or finishing epochs as
    /// needed). Returns false once the run is complete.
    pub fn step(&mut self, cache: &mut dyn CacheSystem, storage: &mut dyn StorageBackend) -> bool {
        if self.done {
            return false;
        }
        if self.plan.is_none() {
            self.begin_epoch(cache, storage);
            if self.num_batches == 0 {
                // Degenerate shard: nothing to do this epoch.
                self.finish_epoch(cache, storage);
                return !self.done;
            }
        }

        self.drain_trainable();
        self.assign_work();

        // Advance the earliest active worker by one sample.
        let Some(w) = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, ws)| ws.batch.is_some())
            .min_by_key(|(_, ws)| ws.cur)
            .map(|(i, _)| i)
        else {
            // All batches assigned and fetched; only training remains.
            self.drain_trainable();
            debug_assert_eq!(self.train_next, self.num_batches);
            self.plan = None;
            self.finish_epoch(cache, storage);
            return !self.done;
        };

        let (b, pos) = self.workers[w].batch.expect("selected an active worker");
        let plan = self.plan.take().expect("plan exists during an epoch");
        let i = b * self.config.batch_size + pos;
        let id = plan.fetch_order()[i];
        let size = self.config.dataset.sample_size(id);
        let cur = self.workers[w].cur;
        let preprocess = self.config.model.preprocess_time_per_sample();

        // With the prefetcher armed, delivery time is max(request,
        // prefetch completion): the fetch cost the consumer sees is only
        // its residual stall. Depth 0 keeps the original demand path.
        let fetch = match self.prefetch.as_mut() {
            Some(pipe) => pipe.fetch(i, cur, cache, storage),
            None => cache.fetch(self.config.job, id, size, cur, storage),
        };
        let latency = fetch.ready_at.saturating_since(cur);
        self.accum.fetch_latency.record(latency);
        self.accum.fetch += latency;
        self.accum.preprocess += preprocess;
        self.accum.samples_fetched += 1;
        if fetch.outcome.served_from_cache() {
            self.accum.served_from_cache += 1;
        }
        self.workers[w].cur = fetch.ready_at + preprocess;

        if plan.is_computed(i) {
            self.computed_counts[b] += 1;
            if let FetchOutcome::Substituted { by, .. } = fetch.outcome {
                // Classify the substitute against this job's current
                // importance view: substituting with an H-sample skews
                // the training distribution more (§V-E).
                if self.current_hlist.contains(by) {
                    self.accum.subs_h += 1;
                } else {
                    self.accum.subs_l += 1;
                }
            }
            // Losses feed the importance table (loss-based IS [18]).
            let served = fetch.served_id;
            let loss = self.loss_model.observe(served);
            self.table.record_loss(served, loss, Epoch(self.epoch));
            self.distinct.insert(served);
            self.accum.samples_trained += 1;
        }

        // Batch complete?
        if pos + 1 >= self.batch_lens[b] as usize {
            self.batch_ready[b] = Some(self.workers[w].cur);
            self.workers[w].batch = None;
        } else {
            self.workers[w].batch = Some((b, pos + 1));
        }
        self.plan = Some(plan);

        self.drain_trainable();
        if self.train_next >= self.num_batches {
            self.plan = None;
            self.finish_epoch(cache, storage);
        }
        !self.done
    }
}

impl Observable for TrainingJob {
    /// Install the shared observability handle. The job contributes
    /// [`TraceEvent::EpochStart`]/[`TraceEvent::EpochEnd`] markers to the
    /// trace; in sharded runs only rank 0 emits them, so splitting the
    /// JSONL on `epoch_start` yields exactly one segment per epoch.
    fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_baselines::LruCache;
    use icache_storage::{LocalTier, Pfs, PfsConfig};
    use icache_types::{ByteSize, DatasetBuilder, SizeModel};

    fn dataset(n: u64) -> Dataset {
        DatasetBuilder::new("t", n)
            .size_model(SizeModel::Fixed(ByteSize::kib(3)))
            .build()
            .unwrap()
    }

    fn quick_config(n: u64, epochs: u32) -> JobConfig {
        let mut c = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset(n));
        c.batch_size = 32;
        c.epochs = epochs;
        c
    }

    #[test]
    fn job_runs_to_completion_and_records_epochs() {
        let mut job = TrainingJob::new(quick_config(320, 3)).unwrap();
        let mut cache = LruCache::new(ByteSize::kib(300));
        let mut storage = LocalTier::tmpfs();
        while job.step(&mut cache, &mut storage) {}
        assert!(job.is_done());
        let m = job.into_metrics("lru");
        assert_eq!(m.epochs.len(), 3);
        for e in &m.epochs {
            assert_eq!(e.samples_fetched, 320, "uniform fetches everything");
            assert!(e.wall_time > SimDuration::ZERO);
            assert!(e.top1 > 0.0);
        }
        // Accuracy improves over epochs.
        assert!(m.epochs[2].top1 > m.epochs[0].top1);
    }

    #[test]
    fn iis_fetches_fraction_after_warmup() {
        let mut cfg = quick_config(320, 3);
        cfg.sampling = SamplingMode::Iis { fraction: 0.5 };
        let mut job = TrainingJob::new(cfg).unwrap();
        let mut cache = LruCache::new(ByteSize::kib(300));
        let mut storage = LocalTier::tmpfs();
        while job.step(&mut cache, &mut storage) {}
        let m = job.into_metrics("lru");
        assert_eq!(m.epochs[0].samples_fetched, 320, "warm-up epoch");
        assert_eq!(m.epochs[1].samples_fetched, 160);
        assert_eq!(m.epochs[2].samples_fetched, 160);
    }

    #[test]
    fn cis_fetches_everything_but_computes_fraction() {
        let mut cfg = quick_config(320, 2);
        cfg.sampling = SamplingMode::Cis { fraction: 0.5 };
        let mut job = TrainingJob::new(cfg).unwrap();
        let mut cache = LruCache::new(ByteSize::kib(300));
        let mut storage = LocalTier::tmpfs();
        while job.step(&mut cache, &mut storage) {}
        let m = job.into_metrics("lru");
        assert_eq!(m.epochs[1].samples_fetched, 320);
        assert_eq!(m.epochs[1].samples_trained, 160);
        // CIS compute per epoch is below uniform compute.
        assert!(m.epochs[1].compute_time < m.epochs[0].compute_time);
    }

    #[test]
    fn slow_storage_creates_stalls_fast_storage_does_not() {
        let run = |use_pfs: bool| {
            let mut job = TrainingJob::new(quick_config(640, 2)).unwrap();
            let mut cache = LruCache::new(ByteSize::kib(60)); // tiny: mostly misses
            let mut m: Box<dyn StorageBackend> = if use_pfs {
                Box::new(Pfs::new(PfsConfig::orangefs_default()).unwrap())
            } else {
                Box::new(LocalTier::tmpfs())
            };
            while job.step(&mut cache, m.as_mut()) {}
            job.into_metrics("lru")
        };
        let remote = run(true);
        let local = run(false);
        assert!(
            remote.epochs[1].stall_time > local.epochs[1].stall_time * 5.0,
            "remote {} vs local {}",
            remote.epochs[1].stall_time,
            local.epochs[1].stall_time
        );
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = || {
            let mut job = TrainingJob::new(quick_config(320, 2)).unwrap();
            let mut cache = LruCache::new(ByteSize::kib(100));
            let mut storage = LocalTier::tmpfs();
            while job.step(&mut cache, &mut storage) {}
            job.into_metrics("lru")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = quick_config(32, 1);
        c.batch_size = 0;
        assert!(TrainingJob::new(c).is_err());
        let mut c = quick_config(32, 1);
        c.workers = 0;
        assert!(TrainingJob::new(c).is_err());
        let mut c = quick_config(32, 1);
        c.epochs = 0;
        assert!(TrainingJob::new(c).is_err());
        let mut c = quick_config(32, 1);
        c.h_list_fraction = 1.5;
        assert!(TrainingJob::new(c).is_err());
    }

    #[test]
    fn next_event_time_is_monotone_while_running() {
        let mut job = TrainingJob::new(quick_config(320, 2)).unwrap();
        let mut cache = LruCache::new(ByteSize::kib(100));
        let mut storage = LocalTier::tmpfs();
        let mut last = SimTime::ZERO;
        while !job.is_done() {
            let t = job.next_event_time();
            assert!(
                t >= last || job.current_epoch().0 > 0,
                "time went backwards"
            );
            last = t;
            job.step(&mut cache, &mut storage);
        }
        assert_eq!(job.next_event_time(), SimTime::from_nanos(u64::MAX));
    }
}
