//! Fetch-level tracing.

use icache_core::{CacheStats, CacheSystem, Fetch, FetchOutcome};
use icache_sampling::HList;
use icache_storage::StorageBackend;
use icache_types::{ByteSize, Epoch, JobId, SampleId, SimDuration, SimTime};

/// One recorded fetch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchEvent {
    /// Submission time.
    pub at: SimTime,
    /// Requesting job.
    pub job: JobId,
    /// The sample the loader asked for.
    pub requested: SampleId,
    /// The sample actually served.
    pub served: SampleId,
    /// What happened.
    pub outcome: FetchOutcome,
    /// Service latency.
    pub latency: SimDuration,
}

impl FetchEvent {
    /// Short outcome tag for logs (`hitH`, `hitL`, `pm`, `sub`, `miss`).
    pub fn kind(&self) -> &'static str {
        match self.outcome {
            FetchOutcome::HitH => "hitH",
            FetchOutcome::HitL => "hitL",
            FetchOutcome::Miss => "miss",
            FetchOutcome::Substituted { .. } => "sub",
        }
    }
}

/// A [`CacheSystem`] decorator that records every fetch into a bounded
/// in-memory trace — the cache-behaviour equivalent of an I/O blktrace.
///
/// Useful for post-hoc analysis (reuse distances, substitution patterns)
/// and for the `cache_explorer` style of debugging. The buffer is bounded:
/// once full, recording stops (the trace marks itself truncated) so long
/// runs cannot exhaust memory.
///
/// # Examples
///
/// ```
/// use icache_baselines::LruCache;
/// use icache_core::CacheSystem;
/// use icache_sim::TracingCache;
/// use icache_storage::LocalTier;
/// use icache_types::{ByteSize, JobId, SampleId, SimTime};
///
/// let mut cache = TracingCache::new(LruCache::new(ByteSize::mib(1)), 1024);
/// let mut st = LocalTier::tmpfs();
/// cache.fetch(JobId(0), SampleId(1), ByteSize::kib(3), SimTime::ZERO, &mut st);
/// assert_eq!(cache.events().len(), 1);
/// assert_eq!(cache.events()[0].kind(), "miss");
/// ```
#[derive(Debug)]
pub struct TracingCache<C> {
    inner: C,
    events: Vec<FetchEvent>,
    capacity: usize,
    truncated: bool,
}

impl<C: CacheSystem> TracingCache<C> {
    /// Wrap `inner`, recording at most `capacity` events.
    pub fn new(inner: C, capacity: usize) -> Self {
        TracingCache {
            inner,
            events: Vec::new(),
            capacity,
            truncated: false,
        }
    }

    /// The recorded events, in fetch order.
    pub fn events(&self) -> &[FetchEvent] {
        &self.events
    }

    /// Whether the buffer filled up and later events were dropped.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The wrapped cache (read access).
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwrap, discarding the trace.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Render the trace as JSON lines (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"at_ns\":{},\"job\":{},\"requested\":{},\"served\":{},\"kind\":\"{}\",\"latency_ns\":{}}}\n",
                e.at.as_nanos(),
                e.job.0,
                e.requested.0,
                e.served.0,
                e.kind(),
                e.latency.as_nanos()
            ));
        }
        out
    }

    /// Count events by outcome kind, in sorted kind order.
    pub fn kind_counts(&self) -> std::collections::BTreeMap<&'static str, u64> {
        let mut m = std::collections::BTreeMap::new();
        for e in &self.events {
            *m.entry(e.kind()).or_insert(0) += 1;
        }
        m
    }
}

impl<C: CacheSystem> CacheSystem for TracingCache<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn fetch(
        &mut self,
        job: JobId,
        id: SampleId,
        size: ByteSize,
        now: SimTime,
        storage: &mut dyn StorageBackend,
    ) -> Fetch {
        let fetch = self.inner.fetch(job, id, size, now, storage);
        if self.events.len() < self.capacity {
            self.events.push(FetchEvent {
                at: now,
                job,
                requested: id,
                served: fetch.served_id,
                outcome: fetch.outcome,
                latency: fetch.ready_at.saturating_since(now),
            });
        } else {
            self.truncated = true;
        }
        fetch
    }

    fn update_hlist(&mut self, job: JobId, hlist: &HList) {
        self.inner.update_hlist(job, hlist);
    }

    fn on_epoch_start(&mut self, job: JobId, epoch: Epoch) {
        self.inner.on_epoch_start(job, epoch);
    }

    fn on_epoch_end(&mut self, job: JobId, epoch: Epoch) {
        self.inner.on_epoch_end(job, epoch);
    }

    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn used_bytes(&self) -> ByteSize {
        self.inner.used_bytes()
    }

    fn capacity(&self) -> ByteSize {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icache_baselines::LruCache;
    use icache_storage::LocalTier;

    fn traced(cap: usize) -> (TracingCache<LruCache>, LocalTier) {
        (
            TracingCache::new(LruCache::new(ByteSize::kib(64)), cap),
            LocalTier::tmpfs(),
        )
    }

    #[test]
    fn records_misses_then_hits() {
        let (mut c, mut st) = traced(16);
        let f = c.fetch(
            JobId(0),
            SampleId(1),
            ByteSize::kib(3),
            SimTime::ZERO,
            &mut st,
        );
        c.fetch(JobId(0), SampleId(1), ByteSize::kib(3), f.ready_at, &mut st);
        let kinds: Vec<&str> = c.events().iter().map(FetchEvent::kind).collect();
        assert_eq!(kinds, vec!["miss", "hitH"]);
        assert_eq!(c.kind_counts()["miss"], 1);
        assert!(!c.is_truncated());
    }

    #[test]
    fn buffer_bounds_are_respected() {
        let (mut c, mut st) = traced(2);
        let mut now = SimTime::ZERO;
        for i in 0..5u64 {
            let f = c.fetch(JobId(0), SampleId(i), ByteSize::kib(3), now, &mut st);
            now = f.ready_at;
        }
        assert_eq!(c.events().len(), 2);
        assert!(c.is_truncated());
        // The underlying cache still served everything.
        assert_eq!(c.stats().requests(), 5);
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let (mut c, mut st) = traced(16);
        c.fetch(
            JobId(3),
            SampleId(9),
            ByteSize::kib(3),
            SimTime::ZERO,
            &mut st,
        );
        let jsonl = c.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"job\":3"));
        assert!(jsonl.contains("\"kind\":\"miss\""));
        // Each line is valid JSON.
        let parsed = icache_obs::Json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(parsed["requested"].as_u64(), Some(9));
    }

    #[test]
    fn latency_matches_fetch_span() {
        let (mut c, mut st) = traced(4);
        let t0 = SimTime::from_nanos(1_000);
        let f = c.fetch(JobId(0), SampleId(0), ByteSize::kib(3), t0, &mut st);
        assert_eq!(c.events()[0].latency, f.ready_at.saturating_since(t0));
        assert_eq!(c.events()[0].at, t0);
        assert_eq!(c.into_inner().name(), "lru");
    }
}
