//! Byte quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A quantity of bytes (capacity, transfer size, cache occupancy).
///
/// # Examples
///
/// ```
/// use icache_types::ByteSize;
/// let cap = ByteSize::mib(28 * 1024); // 28 GiB
/// assert_eq!(cap, ByteSize::gib(28));
/// assert_eq!(ByteSize::kib(64).to_string(), "64.0KiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from raw bytes.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Construct from kibibytes.
    #[inline]
    pub const fn kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Construct from mebibytes.
    #[inline]
    pub const fn mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Construct from gibibytes.
    #[inline]
    pub const fn gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Raw byte count as `f64` (for rate arithmetic).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// True when zero bytes.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// The smaller of two sizes.
    #[inline]
    pub fn min(self, other: ByteSize) -> ByteSize {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two sizes.
    #[inline]
    pub fn max(self, other: ByteSize) -> ByteSize {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// A fraction of this size, rounded down to whole bytes.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or not finite.
    #[inline]
    pub fn scaled(self, frac: f64) -> ByteSize {
        assert!(
            frac.is_finite() && frac >= 0.0,
            "fraction must be finite and non-negative"
        );
        ByteSize((self.0 as f64 * frac) as u64)
    }

    /// How many whole units of `unit` fit into this size.
    ///
    /// Returns `u64::MAX` when `unit` is zero (an unbounded count), which
    /// only arises from degenerate configurations.
    #[inline]
    pub fn units_of(self, unit: ByteSize) -> u64 {
        self.0.checked_div(unit.0).unwrap_or(u64::MAX)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        debug_assert!(self.0 >= rhs.0, "ByteSize subtraction went negative");
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    #[inline]
    fn sub_assign(&mut self, rhs: ByteSize) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl From<u64> for ByteSize {
    fn from(v: u64) -> Self {
        ByteSize(v)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        const KIB: f64 = 1024.0;
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        if b >= GIB {
            write!(f, "{:.2}GiB", b / GIB)
        } else if b >= MIB {
            write!(f, "{:.2}MiB", b / MIB)
        } else if b >= KIB {
            write!(f, "{:.1}KiB", b / KIB)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(ByteSize::kib(1), ByteSize::new(1024));
        assert_eq!(ByteSize::mib(1), ByteSize::kib(1024));
        assert_eq!(ByteSize::gib(1), ByteSize::mib(1024));
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = ByteSize::new(100);
        let b = ByteSize::new(40);
        assert_eq!(a + b, ByteSize::new(140));
        assert_eq!(a - b, ByteSize::new(60));
        assert_eq!(a * 2, ByteSize::new(200));
        assert_eq!(a / 4, ByteSize::new(25));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            ByteSize::new(1).saturating_sub(ByteSize::new(5)),
            ByteSize::ZERO
        );
    }

    #[test]
    fn scaled_takes_fraction() {
        assert_eq!(ByteSize::new(1000).scaled(0.2), ByteSize::new(200));
        assert_eq!(ByteSize::new(1000).scaled(0.0), ByteSize::ZERO);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn scaled_rejects_negative() {
        let _ = ByteSize::new(1000).scaled(-0.5);
    }

    #[test]
    fn units_of_counts_whole_units() {
        assert_eq!(ByteSize::mib(3).units_of(ByteSize::mib(1)), 3);
        assert_eq!(ByteSize::new(5).units_of(ByteSize::new(2)), 2);
        assert_eq!(ByteSize::new(5).units_of(ByteSize::ZERO), u64::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::new(512).to_string(), "512B");
        assert_eq!(ByteSize::kib(64).to_string(), "64.0KiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3.00MiB");
        assert_eq!(ByteSize::gib(2).to_string(), "2.00GiB");
    }

    #[test]
    fn sum_accumulates() {
        let total: ByteSize = (1..=3).map(ByteSize::new).sum();
        assert_eq!(total, ByteSize::new(6));
    }
}
