//! Simulated time.
//!
//! The simulator advances a virtual clock with nanosecond resolution. Two
//! newtypes keep instants and durations apart: [`SimTime`] is a point on the
//! virtual timeline, [`SimDuration`] is a span. Arithmetic between them is
//! defined the same way as for `std::time::{Instant, Duration}`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// # Examples
///
/// ```
/// use icache_types::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use icache_types::SimDuration;
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros_f64(), 2_500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond and saturating negative inputs to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The shorter of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `self - other`, saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The ratio of two spans as a float.
    ///
    /// Returns `0.0` when `denom` is zero; callers report ratios and a
    /// zero denominator means "nothing to compare against".
    #[inline]
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is uncertain.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn instant_plus_duration_advances() {
        let t = SimTime::ZERO + SimDuration::from_micros(3);
        assert_eq!(t.as_nanos(), 3000);
        let t2 = t + SimDuration::from_nanos(1);
        assert_eq!((t2 - t).as_nanos(), 1);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(late.saturating_since(early).as_nanos(), 4);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_micros(20)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scalar_multiplication() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3u64, SimDuration::from_micros(30));
        assert_eq!(d * 0.5f64, SimDuration::from_micros(5));
        assert_eq!(d / 2, SimDuration::from_micros(5));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max_are_symmetric() {
        let a = SimDuration::from_micros(1);
        let b = SimDuration::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.min(a), a);
        let ta = SimTime::from_nanos(1);
        let tb = SimTime::from_nanos(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(tb.min(ta), ta);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Duration arithmetic is associative/commutative and instant
        /// arithmetic is consistent with it.
        #[test]
        fn duration_arithmetic_laws(a in 0u64..1u64<<40, b in 0u64..1u64<<40, c in 0u64..1u64<<40) {
            let (da, db, dc) = (
                SimDuration::from_nanos(a),
                SimDuration::from_nanos(b),
                SimDuration::from_nanos(c),
            );
            prop_assert_eq!(da + db, db + da);
            prop_assert_eq!((da + db) + dc, da + (db + dc));
            let t = SimTime::ZERO + da + db;
            prop_assert_eq!(t.saturating_since(SimTime::ZERO), da + db);
            prop_assert_eq!(t - (SimTime::ZERO + da), db);
        }

        /// from_secs_f64 round-trips within a nanosecond for sane inputs.
        #[test]
        fn secs_f64_roundtrip(ns in 0u64..1u64<<50) {
            let d = SimDuration::from_nanos(ns);
            let back = SimDuration::from_secs_f64(d.as_secs_f64());
            let err = back.as_nanos().abs_diff(d.as_nanos());
            // f64 has 52 bits of mantissa: exact below 2^52 ns up to rounding.
            prop_assert!(err <= 1, "roundtrip error {err}ns for {ns}ns");
        }

        /// Ordering agrees with raw nanosecond ordering.
        #[test]
        fn ordering_matches_nanos(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(
                SimTime::from_nanos(a).cmp(&SimTime::from_nanos(b)),
                a.cmp(&b)
            );
        }
    }
}
