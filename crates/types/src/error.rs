//! Error types shared across the workspace.

use crate::{ByteSize, JobId, NodeId, SampleId};
use std::fmt;

/// Convenience alias used throughout the iCache crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the iCache crate family.
///
/// # Examples
///
/// ```
/// use icache_types::{Error, SampleId};
/// let err = Error::UnknownSample(SampleId(9));
/// assert_eq!(err.to_string(), "unknown sample id s9");
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration parameter was out of its valid range.
    InvalidConfig {
        /// Name of the offending parameter.
        field: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// An importance value was NaN, infinite, or negative.
    InvalidImportance(f64),
    /// A sample id does not belong to the dataset in use.
    UnknownSample(SampleId),
    /// A job id is not registered with the component that received it.
    UnknownJob(JobId),
    /// A node id is not part of the distributed cache cluster.
    UnknownNode(NodeId),
    /// An insert would exceed a fixed capacity.
    CapacityExceeded {
        /// Capacity of the component, in bytes.
        capacity: ByteSize,
        /// Bytes the rejected insert would have required.
        requested: ByteSize,
    },
    /// The requested item is larger than the entire cache region.
    ItemTooLarge {
        /// The sample that could never fit.
        sample: SampleId,
        /// Size of that sample.
        size: ByteSize,
        /// Capacity of the region it was offered to.
        capacity: ByteSize,
    },
    /// An operation arrived in a state that cannot service it
    /// (e.g. evicting from an empty heap).
    InvalidState(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration for `{field}`: {reason}")
            }
            Error::InvalidImportance(v) => {
                write!(
                    f,
                    "importance value must be finite and non-negative, got {v}"
                )
            }
            Error::UnknownSample(id) => write!(f, "unknown sample id {id}"),
            Error::UnknownJob(id) => write!(f, "unknown job id {id}"),
            Error::UnknownNode(id) => write!(f, "unknown node id {id}"),
            Error::CapacityExceeded {
                capacity,
                requested,
            } => {
                write!(
                    f,
                    "capacity exceeded: requested {requested} with capacity {capacity}"
                )
            }
            Error::ItemTooLarge {
                sample,
                size,
                capacity,
            } => {
                write!(
                    f,
                    "sample {sample} of size {size} cannot fit in region of capacity {capacity}"
                )
            }
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an [`Error::InvalidConfig`] with a formatted reason.
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            field,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let cases: Vec<Error> = vec![
            Error::invalid_config("cache_fraction", "must be in (0, 1]"),
            Error::InvalidImportance(f64::NAN),
            Error::UnknownSample(SampleId(1)),
            Error::UnknownJob(JobId(2)),
            Error::UnknownNode(NodeId(3)),
            Error::CapacityExceeded {
                capacity: ByteSize::new(10),
                requested: ByteSize::new(20),
            },
            Error::ItemTooLarge {
                sample: SampleId(4),
                size: ByteSize::mib(2),
                capacity: ByteSize::mib(1),
            },
            Error::InvalidState("heap empty".into()),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "lowercase start: {msg}"
            );
        }
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(Error::UnknownSample(SampleId(0)));
        assert!(e.source().is_none());
    }
}
