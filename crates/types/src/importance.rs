//! Importance values.

use std::cmp::Ordering;
use std::fmt;

/// The importance score assigned to a sample by an importance-sampling
/// algorithm (the paper uses the loss-based algorithm of Jiang et al. \[18\]).
///
/// The wrapped value is guaranteed finite and non-negative, which makes the
/// type totally ordered — a requirement for the H-heap, whose correctness
/// depends on a strict weak ordering of keys.
///
/// # Examples
///
/// ```
/// use icache_types::ImportanceValue;
/// let hi = ImportanceValue::new(2.5)?;
/// let lo = ImportanceValue::new(0.1)?;
/// assert!(hi > lo);
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceValue(f64);

impl ImportanceValue {
    /// The lowest possible importance.
    pub const ZERO: ImportanceValue = ImportanceValue(0.0);

    /// Create an importance value.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidImportance`] if `v` is NaN, infinite,
    /// or negative.
    pub fn new(v: f64) -> crate::Result<Self> {
        if v.is_finite() && v >= 0.0 {
            Ok(ImportanceValue(v))
        } else {
            Err(crate::Error::InvalidImportance(v))
        }
    }

    /// Create an importance value, clamping invalid inputs.
    ///
    /// NaN maps to zero; negative values map to zero; `+inf` maps to
    /// `f64::MAX`. Useful when importing raw loss values that may contain
    /// numeric noise.
    pub fn saturating(v: f64) -> Self {
        if v.is_nan() || v <= 0.0 {
            ImportanceValue(0.0)
        } else if v.is_infinite() {
            ImportanceValue(f64::MAX)
        } else {
            ImportanceValue(v)
        }
    }

    /// The raw score.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for ImportanceValue {
    fn default() -> Self {
        ImportanceValue::ZERO
    }
}

impl Eq for ImportanceValue {}

impl PartialOrd for ImportanceValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ImportanceValue {
    fn cmp(&self, other: &Self) -> Ordering {
        // Invariant: both values are finite, so total ordering is safe.
        self.0
            .partial_cmp(&other.0)
            .expect("ImportanceValue invariant violated: non-finite value")
    }
}

impl fmt::Display for ImportanceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_finite_non_negative() {
        assert!(ImportanceValue::new(0.0).is_ok());
        assert!(ImportanceValue::new(123.456).is_ok());
    }

    #[test]
    fn new_rejects_nan_inf_negative() {
        assert!(ImportanceValue::new(f64::NAN).is_err());
        assert!(ImportanceValue::new(f64::INFINITY).is_err());
        assert!(ImportanceValue::new(-0.1).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(ImportanceValue::saturating(f64::NAN).get(), 0.0);
        assert_eq!(ImportanceValue::saturating(-5.0).get(), 0.0);
        assert_eq!(ImportanceValue::saturating(f64::INFINITY).get(), f64::MAX);
        assert_eq!(ImportanceValue::saturating(1.5).get(), 1.5);
    }

    #[test]
    fn ordering_is_total_on_valid_values() {
        let mut v = [
            ImportanceValue::new(3.0).unwrap(),
            ImportanceValue::new(1.0).unwrap(),
            ImportanceValue::new(2.0).unwrap(),
        ];
        v.sort();
        let raw: Vec<f64> = v.iter().map(|x| x.get()).collect();
        assert_eq!(raw, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ImportanceValue::default(), ImportanceValue::ZERO);
    }
}
