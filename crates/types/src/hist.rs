//! Log-bucketed latency histograms.

use crate::SimDuration;

/// Number of logarithmic buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds, with the last bucket open-ended.
const BUCKETS: usize = 64;

/// A fixed-size logarithmic histogram of durations.
///
/// Storage systems are judged on their *tails*: a cache that halves the
/// mean but leaves p99 untouched has not fixed the data stalls. The
/// histogram uses power-of-two buckets (≤ 50 % relative quantile error,
/// constant memory) — the standard trade-off for always-on latency
/// tracking.
///
/// # Examples
///
/// ```
/// use icache_types::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// for us in [10u64, 20, 30, 40, 5_000] {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5) < SimDuration::from_micros(100));
/// assert!(h.quantile(0.99) >= SimDuration::from_micros(4_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max: SimDuration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_nanos: 0,
            max: SimDuration::ZERO,
        }
    }

    fn bucket_of(d: SimDuration) -> usize {
        let ns = d.as_nanos();
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.counts[Self::bucket_of(d)] += 1;
        self.total += 1;
        self.sum_nanos += d.as_nanos() as u128;
        self.max = self.max.max(d);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded duration (exact).
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Mean of recorded durations (exact).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_nanos / self.total as u128) as u64)
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), reported as the upper
    /// edge of the containing bucket (within 2× of the true value).
    /// Returns zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bucket edge, capped by the exact max.
                let edge = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimDuration::from_nanos(edge).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max = self.max.max(other.max);
    }

    /// Forget everything.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum_nanos = 0;
        self.max = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.99), SimDuration::ZERO);
    }

    #[test]
    fn quantiles_bracket_true_values_within_2x() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let p50 = h.quantile(0.5).as_nanos() as f64;
        let truth = 500_000.0;
        assert!(p50 >= truth * 0.99 && p50 <= truth * 2.0, "p50 {p50}");
        let p99 = h.quantile(0.99).as_nanos() as f64;
        assert!(
            (990_000.0 * 0.99..=990_000.0 * 2.0).contains(&p99),
            "p99 {p99}"
        );
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_micros(30));
        assert_eq!(h.mean(), SimDuration::from_micros(20));
        assert_eq!(h.max(), SimDuration::from_micros(30));
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(5));
        assert_eq!(h.quantile(1.0), SimDuration::from_nanos(5));
        assert_eq!(h.quantile(0.0001), SimDuration::from_nanos(5));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(1));
        b.record(SimDuration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_millis(1));
        a.clear();
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn zero_duration_is_representable() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }
}
