//! Deterministic seed derivation.
//!
//! Every source of randomness in the workspace flows from one `u64` run
//! seed. Components derive private sub-seeds with [`mix_seed`] so that, for
//! example, the loss model and the storage jitter draw independent streams
//! that are both reproducible for a given run seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The SplitMix64 mixing function.
///
/// A small, fast, well-dispersed 64-bit mixer (Steele et al., "Fast
/// Splittable Pseudorandom Number Generators"). Used for deriving sub-seeds
/// and for hashing `(seed, id)` pairs into deterministic per-sample values.
///
/// # Examples
///
/// ```
/// use icache_types::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a sub-seed from a parent seed and a stream tag.
///
/// Different `tag` values produce statistically independent streams from the
/// same parent. Tags are short static strings such as `"loss-model"`.
///
/// # Examples
///
/// ```
/// use icache_types::mix_seed;
/// let a = mix_seed(7, "storage");
/// let b = mix_seed(7, "loss");
/// assert_ne!(a, b);
/// assert_eq!(a, mix_seed(7, "storage"));
/// ```
pub fn mix_seed(parent: u64, tag: &str) -> u64 {
    let mut h = splitmix64(parent);
    for &b in tag.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// A deterministic factory of independent RNG streams.
///
/// # Examples
///
/// ```
/// use icache_types::SeedSequence;
/// use rand::Rng;
///
/// let seq = SeedSequence::new(99);
/// let mut a = seq.rng("alpha");
/// let mut b = seq.rng("beta");
/// let (x, y): (u64, u64) = (a.gen(), b.gen());
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedSequence { root: seed }
    }

    /// The root seed this sequence was created with.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derive the raw sub-seed for `tag`.
    pub fn seed(&self, tag: &str) -> u64 {
        mix_seed(self.root, tag)
    }

    /// Derive the raw sub-seed for `tag` and a numeric discriminator
    /// (e.g. a job index).
    pub fn seed_indexed(&self, tag: &str, index: u64) -> u64 {
        splitmix64(mix_seed(self.root, tag) ^ splitmix64(index))
    }

    /// Build a [`StdRng`] for `tag`.
    pub fn rng(&self, tag: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed(tag))
    }

    /// Build a [`StdRng`] for `tag` and a numeric discriminator.
    pub fn rng_indexed(&self, tag: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_indexed(tag, index))
    }

    /// A child sequence, useful for handing a component its own namespace.
    pub fn child(&self, tag: &str) -> SeedSequence {
        SeedSequence {
            root: self.seed(tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_disperses_consecutive_inputs() {
        let outputs: HashSet<u64> = (0..10_000).map(splitmix64).collect();
        assert_eq!(outputs.len(), 10_000);
    }

    #[test]
    fn mix_seed_depends_on_tag_and_parent() {
        assert_ne!(mix_seed(1, "a"), mix_seed(1, "b"));
        assert_ne!(mix_seed(1, "a"), mix_seed(2, "a"));
        assert_eq!(mix_seed(1, "a"), mix_seed(1, "a"));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let seq = SeedSequence::new(5);
        let x: u64 = seq.rng("t").gen();
        let y: u64 = seq.rng("t").gen();
        assert_eq!(x, y);
    }

    #[test]
    fn indexed_seeds_differ_per_index() {
        let seq = SeedSequence::new(5);
        let seeds: HashSet<u64> = (0..100).map(|i| seq.seed_indexed("job", i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn child_namespaces_are_independent() {
        let seq = SeedSequence::new(5);
        let a = seq.child("x").seed("same-tag");
        let b = seq.child("y").seed("same-tag");
        assert_ne!(a, b);
    }
}
