//! A dense bitset over sample ids.

use crate::SampleId;

/// A fixed-universe set of [`SampleId`]s backed by a bitmap.
///
/// Membership checks are the hottest operation on the cache fast path
/// ("is this id an H-sample?"), so the set is a flat bitmap rather than a
/// hash set: O(1) with one cache line touched.
///
/// # Examples
///
/// ```
/// use icache_types::{IdSet, SampleId};
/// let mut set = IdSet::new(100);
/// set.insert(SampleId(7));
/// assert!(set.contains(SampleId(7)));
/// assert!(!set.contains(SampleId(8)));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSet {
    words: Vec<u64>,
    universe: u64,
    len: usize,
}

impl IdSet {
    /// An empty set over the universe `0..universe`.
    pub fn new(universe: u64) -> Self {
        IdSet {
            words: vec![0; (universe as usize).div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Size of the universe this set ranges over.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Number of ids currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no ids are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` is in the set. Ids outside the universe are never
    /// members.
    #[inline]
    pub fn contains(&self, id: SampleId) -> bool {
        if id.0 >= self.universe {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Insert `id`. Returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    #[inline]
    pub fn insert(&mut self, id: SampleId) -> bool {
        assert!(
            id.0 < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += usize::from(newly);
        newly
    }

    /// Remove `id`. Returns true if it was present.
    #[inline]
    pub fn remove(&mut self, id: SampleId) -> bool {
        if id.0 >= self.universe {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.len -= usize::from(was);
        was
    }

    /// Remove every id.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Widen the universe to at least `universe`, keeping every member.
    /// Shrinking is not supported: a smaller value is a no-op, so existing
    /// members can never silently fall outside the universe.
    pub fn grow_to(&mut self, universe: u64) {
        if universe > self.universe {
            self.universe = universe;
            self.words.resize((universe as usize).div_ceil(64), 0);
        }
    }

    /// Iterate over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = SampleId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = (wi * 64) as u64;
            BitIter { word, base }
        })
    }
}

struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = SampleId;
    fn next(&mut self) -> Option<SampleId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as u64;
        self.word &= self.word - 1;
        Some(SampleId(self.base + tz))
    }
}

impl FromIterator<SampleId> for IdSet {
    /// Collect ids into a set whose universe is one past the largest id.
    fn from_iter<I: IntoIterator<Item = SampleId>>(iter: I) -> Self {
        let ids: Vec<SampleId> = iter.into_iter().collect();
        let universe = ids.iter().map(|i| i.0 + 1).max().unwrap_or(0);
        let mut set = IdSet::new(universe);
        for id in ids {
            set.insert(id);
        }
        set
    }
}

impl Extend<SampleId> for IdSet {
    fn extend<I: IntoIterator<Item = SampleId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = IdSet::new(200);
        assert!(s.insert(SampleId(0)));
        assert!(s.insert(SampleId(63)));
        assert!(s.insert(SampleId(64)));
        assert!(s.insert(SampleId(199)));
        assert!(!s.insert(SampleId(0)), "double insert is not new");
        assert_eq!(s.len(), 4);
        assert!(s.remove(SampleId(63)));
        assert!(!s.remove(SampleId(63)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(SampleId(64)));
        assert!(!s.contains(SampleId(63)));
    }

    #[test]
    fn out_of_universe_is_never_member() {
        let s = IdSet::new(10);
        assert!(!s.contains(SampleId(10)));
        assert!(!s.contains(SampleId(u64::MAX)));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        IdSet::new(10).insert(SampleId(10));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let mut s = IdSet::new(300);
        for id in [5u64, 250, 64, 65, 0] {
            s.insert(SampleId(id));
        }
        let got: Vec<u64> = s.iter().map(|i| i.0).collect();
        assert_eq!(got, vec![0, 5, 64, 65, 250]);
    }

    #[test]
    fn clear_empties() {
        let mut s: IdSet = (0..50).map(SampleId).collect();
        assert_eq!(s.len(), 50);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(SampleId(3)));
    }

    #[test]
    fn grow_to_widens_and_keeps_members() {
        let mut s = IdSet::new(10);
        s.insert(SampleId(7));
        s.grow_to(100);
        assert_eq!(s.universe(), 100);
        assert!(s.contains(SampleId(7)));
        assert!(s.insert(SampleId(99)));
        s.grow_to(5); // shrink request is a no-op
        assert_eq!(s.universe(), 100);
        assert!(s.contains(SampleId(99)));
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: IdSet = [SampleId(3), SampleId(9)].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        /// IdSet behaves exactly like a reference HashSet under arbitrary
        /// insert/remove interleavings.
        #[test]
        fn matches_hashset(ops in proptest::collection::vec((0u64..256, any::<bool>()), 1..300)) {
            let mut set = IdSet::new(256);
            let mut model: HashSet<u64> = HashSet::new();
            for (id, insert) in ops {
                if insert {
                    prop_assert_eq!(set.insert(SampleId(id)), model.insert(id));
                } else {
                    prop_assert_eq!(set.remove(SampleId(id)), model.remove(&id));
                }
                prop_assert_eq!(set.len(), model.len());
            }
            let from_set: HashSet<u64> = set.iter().map(|s| s.0).collect();
            prop_assert_eq!(from_set, model);
        }
    }
}
