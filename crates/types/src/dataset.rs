//! Synthetic dataset descriptors.
//!
//! The paper trains on CIFAR-10 (50 000 images, ~3 KB each) and ImageNet-1K
//! (1 281 167 images, ~140 GB total). We do not ship the images; the cache
//! and storage layers only ever observe *sample identities and sizes*, so a
//! [`Dataset`] describes exactly that. Per-sample sizes are derived
//! deterministically from the dataset seed, so no large size tables need to
//! be materialised even for ImageNet-scale cardinalities.

use crate::{splitmix64, ByteSize, Error, Result, SampleId};
use std::fmt;
use std::sync::OnceLock;

/// How per-sample sizes are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// Every sample has the same size (CIFAR-style fixed records).
    Fixed(ByteSize),
    /// Sizes follow a log-normal distribution (JPEG-style variable records),
    /// clamped to `[min, max]`.
    LogNormal {
        /// Location parameter of the underlying normal (of ln-bytes).
        mu: f64,
        /// Scale parameter of the underlying normal (of ln-bytes).
        sigma: f64,
        /// Smallest size ever produced.
        min: ByteSize,
        /// Largest size ever produced.
        max: ByteSize,
    },
}

impl SizeModel {
    fn sample_size(&self, seed: u64, id: SampleId) -> ByteSize {
        match *self {
            SizeModel::Fixed(sz) => sz,
            SizeModel::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                // Deterministic standard normal from (seed, id) via
                // Box–Muller over two splitmix64-derived uniforms.
                let h1 = splitmix64(seed ^ splitmix64(id.0));
                let h2 = splitmix64(h1);
                let u1 = ((h1 >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
                let u2 = ((h2 >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let bytes = (mu + sigma * z).exp();
                let clamped = bytes.clamp(min.as_f64(), max.as_f64());
                ByteSize::new(clamped as u64)
            }
        }
    }
}

/// A description of a training dataset: its cardinality and the size of
/// every sample.
///
/// Construction goes through presets ([`Dataset::cifar10`],
/// [`Dataset::imagenet_1k`]) or [`DatasetBuilder`].
///
/// # Examples
///
/// ```
/// use icache_types::{Dataset, SampleId};
/// let ds = Dataset::cifar10();
/// assert_eq!(ds.len(), 50_000);
/// // Sizes are deterministic:
/// assert_eq!(ds.sample_size(SampleId(5)), ds.sample_size(SampleId(5)));
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    num_samples: u64,
    size_model: SizeModel,
    seed: u64,
    total_bytes: OnceLock<ByteSize>,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.num_samples == other.num_samples
            && self.size_model == other.size_model
            && self.seed == other.seed
    }
}

impl Dataset {
    /// CIFAR-10: 50 000 fixed-size ~3 KB samples (32×32×3 + label).
    pub fn cifar10() -> Dataset {
        DatasetBuilder::new("cifar10", 50_000)
            .size_model(SizeModel::Fixed(ByteSize::new(3_073)))
            .build()
            .expect("preset is valid")
    }

    /// ImageNet-1K: 1 281 167 variable-size JPEG samples, ~140 GB total
    /// (mean ≈ 115 KB, log-normal spread).
    pub fn imagenet_1k() -> Dataset {
        DatasetBuilder::new("imagenet-1k", 1_281_167)
            .size_model(SizeModel::LogNormal {
                // mean of LogNormal = exp(mu + sigma^2/2) ≈ 114.7 KB
                mu: 11.52,
                sigma: 0.55,
                min: ByteSize::kib(4),
                max: ByteSize::mib(4),
            })
            .build()
            .expect("preset is valid")
    }

    /// A proportionally smaller copy of this dataset, used to keep
    /// long sweeps affordable. Keeps the size model, scales cardinality.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `fraction` is not in `(0, 1]`
    /// or the scaled dataset would be empty.
    pub fn scaled(&self, fraction: f64) -> Result<Dataset> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(Error::invalid_config("fraction", "must be in (0, 1]"));
        }
        let n = ((self.num_samples as f64) * fraction).round() as u64;
        if n == 0 {
            return Err(Error::invalid_config(
                "fraction",
                "scaled dataset would be empty",
            ));
        }
        DatasetBuilder::new(format!("{}@{:.2}", self.name, fraction), n)
            .size_model(self.size_model)
            .seed(self.seed)
            .build()
    }

    /// Dataset name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.num_samples
    }

    /// True when the dataset holds no samples (never true for valid sets).
    pub fn is_empty(&self) -> bool {
        self.num_samples == 0
    }

    /// The size-generation model.
    pub fn size_model(&self) -> SizeModel {
        self.size_model
    }

    /// Whether `id` belongs to this dataset.
    pub fn contains(&self, id: SampleId) -> bool {
        id.0 < self.num_samples
    }

    /// Size of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`Dataset::contains`] to guard
    /// untrusted ids.
    pub fn sample_size(&self, id: SampleId) -> ByteSize {
        assert!(
            self.contains(id),
            "sample {id} out of range for dataset {} of {} samples",
            self.name,
            self.num_samples
        );
        self.size_model.sample_size(self.seed, id)
    }

    /// Total bytes across all samples (computed once, then cached).
    pub fn total_bytes(&self) -> ByteSize {
        *self.total_bytes.get_or_init(|| match self.size_model {
            SizeModel::Fixed(sz) => sz * self.num_samples,
            SizeModel::LogNormal { .. } => (0..self.num_samples)
                .map(|i| self.size_model.sample_size(self.seed, SampleId(i)))
                .sum(),
        })
    }

    /// Mean sample size.
    pub fn mean_sample_size(&self) -> ByteSize {
        if self.num_samples == 0 {
            ByteSize::ZERO
        } else {
            self.total_bytes() / self.num_samples
        }
    }

    /// Iterate over all sample ids in dense order.
    pub fn ids(&self) -> impl Iterator<Item = SampleId> + '_ {
        (0..self.num_samples).map(SampleId)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} samples, {})",
            self.name,
            self.num_samples,
            self.total_bytes()
        )
    }
}

/// Builder for custom [`Dataset`]s.
///
/// # Examples
///
/// ```
/// use icache_types::{ByteSize, Dataset, DatasetBuilder, SizeModel};
/// let ds = DatasetBuilder::new("tiny", 100)
///     .size_model(SizeModel::Fixed(ByteSize::kib(8)))
///     .seed(7)
///     .build()?;
/// assert_eq!(ds.total_bytes(), ByteSize::kib(800));
/// # Ok::<(), icache_types::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    name: String,
    num_samples: u64,
    size_model: SizeModel,
    seed: u64,
}

impl DatasetBuilder {
    /// Start building a dataset with `num_samples` samples.
    pub fn new(name: impl Into<String>, num_samples: u64) -> Self {
        DatasetBuilder {
            name: name.into(),
            num_samples,
            size_model: SizeModel::Fixed(ByteSize::kib(4)),
            seed: 0x0DA7_A5E7,
        }
    }

    /// Set the per-sample size model.
    pub fn size_model(mut self, model: SizeModel) -> Self {
        self.size_model = model;
        self
    }

    /// Set the seed that drives size generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finish building.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the dataset would be empty,
    /// a fixed size is zero, or log-normal parameters are not finite /
    /// have an empty `[min, max]` range.
    pub fn build(self) -> Result<Dataset> {
        if self.num_samples == 0 {
            return Err(Error::invalid_config(
                "num_samples",
                "dataset must be non-empty",
            ));
        }
        match self.size_model {
            SizeModel::Fixed(sz) if sz.is_zero() => {
                return Err(Error::invalid_config(
                    "size_model",
                    "fixed sample size must be non-zero",
                ));
            }
            SizeModel::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
                    return Err(Error::invalid_config(
                        "size_model",
                        "log-normal parameters must be finite with sigma >= 0",
                    ));
                }
                if min > max || min.is_zero() {
                    return Err(Error::invalid_config(
                        "size_model",
                        "log-normal clamp range must satisfy 0 < min <= max",
                    ));
                }
            }
            SizeModel::Fixed(_) => {}
        }
        Ok(Dataset {
            name: self.name,
            num_samples: self.num_samples,
            size_model: self.size_model,
            seed: self.seed,
            total_bytes: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar10_matches_paper_shape() {
        let ds = Dataset::cifar10();
        assert_eq!(ds.len(), 50_000);
        assert_eq!(ds.sample_size(SampleId(0)), ByteSize::new(3_073));
        // ~150 MB total
        let total = ds.total_bytes().as_f64();
        assert!((1.4e8..1.6e8).contains(&total), "total {total}");
    }

    #[test]
    fn imagenet_mean_size_near_115_kib() {
        // Use a scaled copy so the test stays fast.
        let ds = Dataset::imagenet_1k().scaled(0.01).unwrap();
        let mean = ds.mean_sample_size().as_f64();
        assert!(
            (80_000.0..150_000.0).contains(&mean),
            "mean sample size {mean} outside expected band"
        );
    }

    #[test]
    fn sizes_are_deterministic_and_clamped() {
        let ds = DatasetBuilder::new("t", 1000)
            .size_model(SizeModel::LogNormal {
                mu: 10.0,
                sigma: 1.0,
                min: ByteSize::kib(2),
                max: ByteSize::kib(64),
            })
            .seed(3)
            .build()
            .unwrap();
        for id in ds.ids() {
            let sz = ds.sample_size(id);
            assert_eq!(sz, ds.sample_size(id));
            assert!(sz >= ByteSize::kib(2) && sz <= ByteSize::kib(64));
        }
    }

    #[test]
    fn different_seeds_give_different_size_streams() {
        let mk = |seed| {
            DatasetBuilder::new("t", 64)
                .size_model(SizeModel::LogNormal {
                    mu: 10.0,
                    sigma: 1.0,
                    min: ByteSize::new(1),
                    max: ByteSize::gib(1),
                })
                .seed(seed)
                .build()
                .unwrap()
        };
        let a = mk(1);
        let b = mk(2);
        let differing = a
            .ids()
            .filter(|&id| a.sample_size(id) != b.sample_size(id))
            .count();
        assert!(differing > 32);
    }

    #[test]
    fn contains_guards_range() {
        let ds = Dataset::cifar10();
        assert!(ds.contains(SampleId(49_999)));
        assert!(!ds.contains(SampleId(50_000)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sample_size_panics_out_of_range() {
        let _ = Dataset::cifar10().sample_size(SampleId(50_000));
    }

    #[test]
    fn builder_validates() {
        assert!(DatasetBuilder::new("e", 0).build().is_err());
        assert!(DatasetBuilder::new("z", 1)
            .size_model(SizeModel::Fixed(ByteSize::ZERO))
            .build()
            .is_err());
        assert!(DatasetBuilder::new("l", 1)
            .size_model(SizeModel::LogNormal {
                mu: f64::NAN,
                sigma: 1.0,
                min: ByteSize::new(1),
                max: ByteSize::new(2),
            })
            .build()
            .is_err());
        assert!(DatasetBuilder::new("l", 1)
            .size_model(SizeModel::LogNormal {
                mu: 1.0,
                sigma: 1.0,
                min: ByteSize::new(5),
                max: ByteSize::new(2),
            })
            .build()
            .is_err());
    }

    #[test]
    fn scaled_preserves_sizes_for_shared_prefix() {
        let full = Dataset::cifar10();
        let half = full.scaled(0.5).unwrap();
        assert_eq!(half.len(), 25_000);
        assert_eq!(half.sample_size(SampleId(3)), full.sample_size(SampleId(3)));
        assert!(full.scaled(0.0).is_err());
        assert!(full.scaled(1.5).is_err());
    }

    #[test]
    fn display_mentions_name_and_count() {
        let s = Dataset::cifar10().to_string();
        assert!(s.contains("cifar10") && s.contains("50000"));
    }
}
