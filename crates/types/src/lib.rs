//! Common vocabulary types for the iCache reproduction.
//!
//! This crate defines the identifiers, unit newtypes, dataset descriptors,
//! and error types shared by every other crate in the workspace:
//!
//! * [`SampleId`], [`JobId`], [`NodeId`], [`Epoch`] — strongly typed ids.
//! * [`SimTime`] / [`SimDuration`] — nanosecond-precision simulated time.
//! * [`ByteSize`] — byte quantities with human-readable formatting.
//! * [`ImportanceValue`] — a totally ordered, finite `f64` importance score.
//! * [`Dataset`] — deterministic synthetic dataset descriptors standing in
//!   for CIFAR-10 and ImageNet-1K (see `DESIGN.md` for the substitution
//!   rationale).
//! * [`Error`] — the crate-family error type.
//!
//! # Examples
//!
//! ```
//! use icache_types::{Dataset, SampleId, ByteSize};
//!
//! let ds = Dataset::cifar10();
//! assert_eq!(ds.len(), 50_000);
//! let sz: ByteSize = ds.sample_size(SampleId(0));
//! assert!(sz.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytesize;
mod dataset;
mod error;
mod hist;
mod ids;
mod idset;
mod importance;
mod membership;
mod rngutil;
mod time;

pub use bytesize::ByteSize;
pub use dataset::{Dataset, DatasetBuilder, SizeModel};
pub use error::{Error, Result};
pub use hist::LatencyHistogram;
pub use ids::{Epoch, JobId, NodeId, SampleId};
pub use idset::IdSet;
pub use importance::ImportanceValue;
pub use membership::NodeState;
pub use rngutil::{mix_seed, splitmix64, SeedSequence};
pub use time::{SimDuration, SimTime};
