//! Membership states for the sharded cache service.

use std::fmt;

/// The failure detector's view of one cache node (paper §III-E extended
/// with churn: nodes can crash, be suspected via missed heartbeats, be
/// declared down, and later rejoin).
///
/// The state machine is strictly `Alive → Suspect → Down` on missed
/// heartbeats, and `* → Alive` on an explicit rejoin; there is no
/// direct `Alive → Down` edge, so a single late heartbeat can clear a
/// suspicion before any repartitioning happens.
///
/// # Examples
///
/// ```
/// use icache_types::NodeState;
/// assert!(NodeState::Alive.is_live());
/// assert!(NodeState::Suspect.is_live(), "suspects still serve traffic");
/// assert!(!NodeState::Down.is_live());
/// assert_eq!(NodeState::Suspect.name(), "suspect");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum NodeState {
    /// Heartbeats arriving on schedule; full cluster member.
    #[default]
    Alive,
    /// Heartbeats overdue; still owns its shards while the detector
    /// waits for the down threshold.
    Suspect,
    /// Declared failed: excluded from ownership until it rejoins.
    Down,
}

impl NodeState {
    /// Short lowercase name (the `state` field of `membership_change`
    /// trace events).
    pub fn name(self) -> &'static str {
        match self {
            NodeState::Alive => "alive",
            NodeState::Suspect => "suspect",
            NodeState::Down => "down",
        }
    }

    /// Whether the node still participates in directory ownership and
    /// serving (only `Down` nodes are excluded).
    pub fn is_live(self) -> bool {
        !matches!(self, NodeState::Down)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_trace_vocabulary() {
        assert_eq!(NodeState::Alive.to_string(), "alive");
        assert_eq!(NodeState::Suspect.to_string(), "suspect");
        assert_eq!(NodeState::Down.to_string(), "down");
    }

    #[test]
    fn default_is_alive_and_live() {
        assert_eq!(NodeState::default(), NodeState::Alive);
        assert!(NodeState::default().is_live());
    }
}
