//! Strongly typed identifiers.

use std::fmt;

/// Identity of a training sample within a [`crate::Dataset`].
///
/// Sample ids are dense indices in `0..dataset.len()`; the paper stores them
/// as 64-bit values in the H-list and we keep the same width.
///
/// # Examples
///
/// ```
/// use icache_types::SampleId;
/// let id = SampleId(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "s7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SampleId(pub u64);

impl SampleId {
    /// The dense index of this sample, usable for `Vec` addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SampleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u64> for SampleId {
    fn from(v: u64) -> Self {
        SampleId(v)
    }
}

/// Identity of a training job (one model-training process).
///
/// In multi-job experiments several jobs share the same cache server and
/// dataset; the coordinator keys its per-job state on `JobId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl From<u32> for JobId {
    fn from(v: u32) -> Self {
        JobId(v)
    }
}

/// Identity of a node in the distributed cache (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// An epoch number (0-based). One epoch visits the selected sample set once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The epoch following this one.
    #[inline]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// The dense index of this epoch, usable for `Vec` addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch{}", self.0)
    }
}

impl From<u32> for Epoch {
    fn from(v: u32) -> Self {
        Epoch(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn sample_id_roundtrips_through_index() {
        for raw in [0u64, 1, 42, u32::MAX as u64] {
            assert_eq!(SampleId(raw).index() as u64, raw);
        }
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<SampleId> = (0..100).map(SampleId).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn epoch_next_increments() {
        assert_eq!(Epoch(0).next(), Epoch(1));
        assert_eq!(Epoch(41).next().index(), 42);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(SampleId(3).to_string(), "s3");
        assert_eq!(JobId(2).to_string(), "job2");
        assert_eq!(NodeId(1).to_string(), "node1");
        assert_eq!(Epoch(9).to_string(), "epoch9");
    }

    #[test]
    fn from_impls_match_field() {
        assert_eq!(SampleId::from(5u64), SampleId(5));
        assert_eq!(JobId::from(5u32), JobId(5));
        assert_eq!(NodeId::from(5u32), NodeId(5));
        assert_eq!(Epoch::from(5u32), Epoch(5));
    }

    #[test]
    fn raw_value_roundtrip() {
        let id = SampleId(123);
        let back = SampleId(id.0.to_string().parse().unwrap());
        assert_eq!(id, back);
    }
}
