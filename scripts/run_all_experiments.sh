#!/usr/bin/env bash
# Regenerate every paper table/figure plus the extension ablations into
# results/. Scale knobs: ICACHE_CIFAR_SCALE, ICACHE_IMAGENET_SCALE,
# ICACHE_PERF_EPOCHS, ICACHE_ACC_EPOCHS, ICACHE_SEED.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p icache-bench --bins
for b in fig01_io_fraction fig02_cis_limits fig03_importance_drift \
         table1_accuracy_cifar table2_accuracy_imagenet fig07_convergence \
         fig08_epoch_time fig09_io_time fig10_ablation_time \
         fig11_ablation_hitratio table3_substitution fig12_multi_gpu \
         fig13_distributed fig14_multi_job fig15_workers fig16_cache_size \
         fig17_churn fig18_prefetch \
         ablation_package_size ablation_benefit_threshold ablation_pm_tier \
         ablation_criterion; do
  echo "== $b"
  ./target/release/"$b" | tee "results/$b.txt"
done
