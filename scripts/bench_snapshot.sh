#!/usr/bin/env bash
# Record a perf snapshot of the replay workload and the cache-core hot
# paths into BENCH_icache.json at the repo root. Re-run after perf work
# and commit the file so successive PRs have comparable numbers.
#
#   scripts/bench_snapshot.sh [extra bench_snapshot flags...]
#
# Knobs are forwarded verbatim, e.g.:
#   scripts/bench_snapshot.sh --requests 500000 --parallel 8
set -euo pipefail
cd "$(dirname "$0")/.."

cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$cores" -le 1 ]; then
    echo "==============================================================" >&2
    echo "WARNING: this machine exposes only 1 CPU. Parallel and" >&2
    echo "loader-thread speedups recorded in BENCH_icache.json will be" >&2
    echo "~1x by construction — they are NOT scaling results. Re-record" >&2
    echo "on a multi-core runner before comparing speedups." >&2
    echo "==============================================================" >&2
fi

cargo build --release -p icache-bench --bin bench_snapshot
target/release/bench_snapshot --out BENCH_icache.json "$@"
