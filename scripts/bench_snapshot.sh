#!/usr/bin/env bash
# Record a perf snapshot of the replay workload and the cache-core hot
# paths into BENCH_icache.json at the repo root. Re-run after perf work
# and commit the file so successive PRs have comparable numbers.
#
#   scripts/bench_snapshot.sh [extra bench_snapshot flags...]
#
# Knobs are forwarded verbatim, e.g.:
#   scripts/bench_snapshot.sh --requests 500000 --parallel 8
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p icache-bench --bin bench_snapshot
target/release/bench_snapshot --out BENCH_icache.json "$@"
