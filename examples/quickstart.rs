//! Quickstart: train one model behind iCache and behind a plain LRU
//! cache, and compare epoch times, hit ratios, and final accuracy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use icache::sim::{Scenario, SystemKind};

fn main() -> Result<(), icache::types::Error> {
    // ShuffleNet on a 10% slice of CIFAR-10 (the paper's most I/O-bound
    // model), data on a simulated 4-server OrangeFS, cache = 20%.
    let configure = |system| {
        Scenario::cifar10(system)
            .model(icache::dnn::ModelProfile::shufflenet())
            .scale_dataset(0.1)
            .expect("valid scale")
            .epochs(6)
    };

    println!("training ShuffleNet/CIFAR-10 against a simulated OrangeFS...\n");

    let default = configure(SystemKind::Default).run()?;
    let icache = configure(SystemKind::Icache).run()?;

    let d = default.avg_epoch_time_steady();
    let i = icache.avg_epoch_time_steady();

    println!("                 Default (LRU)   iCache");
    println!(
        "epoch time       {:>13}   {:>6}",
        format!("{d}"),
        format!("{i}")
    );
    println!(
        "stall time       {:>13}   {:>6}",
        format!("{}", default.avg_stall_time_steady()),
        format!("{}", icache.avg_stall_time_steady())
    );
    println!(
        "cache hit ratio  {:>12.1}%   {:>5.1}%",
        default.avg_hit_ratio_steady() * 100.0,
        icache.avg_hit_ratio_steady() * 100.0
    );
    println!(
        "top-1 accuracy   {:>12.2}    {:>6.2}",
        default.final_top1(),
        icache.final_top1()
    );
    println!();
    println!(
        "iCache speedup: {:.2}x (the paper reports up to 2.3x over Default for ShuffleNet)",
        d.as_secs_f64() / i.as_secs_f64()
    );
    Ok(())
}
