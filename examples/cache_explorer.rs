//! Cache explorer: drive the iCache manager by hand and watch
//! Algorithm 1 decide — H-hits, importance-based eviction, L-cache
//! substitution, and dynamic packaging.
//!
//! ```sh
//! cargo run --release --example cache_explorer
//! ```

use icache::core::{CacheSystem, FetchOutcome, IcacheConfig, IcacheManager};
use icache::sampling::{HList, ImportanceTable};
use icache::storage::{Pfs, PfsConfig, StorageBackend};
use icache::types::{
    ByteSize, Dataset, DatasetBuilder, Epoch, JobId, SampleId, SimTime, SizeModel,
};

fn show(fetch: &icache::core::Fetch, requested: SampleId) {
    let what = match fetch.outcome {
        FetchOutcome::HitH => "H-cache hit".to_string(),
        FetchOutcome::HitL => "L-cache hit".to_string(),
        FetchOutcome::Miss => "storage read".to_string(),
        FetchOutcome::Substituted { by, .. } => format!("substituted by {by}"),
    };
    println!(
        "  fetch {requested:>4} -> {what:<22} ready at {}",
        fetch.ready_at
    );
}

fn main() -> Result<(), icache::types::Error> {
    // A small synthetic dataset so every decision is easy to follow.
    let dataset: Dataset = DatasetBuilder::new("toy", 1_000)
        .size_model(SizeModel::Fixed(ByteSize::kib(3)))
        .build()?;
    let mut cache = IcacheManager::new(IcacheConfig::for_dataset(&dataset, 0.2)?, &dataset)?;
    let mut storage = Pfs::new(PfsConfig::orangefs_default())?;
    let job = JobId(0);

    // Invent importance values: samples 0..100 are the hard ones.
    let mut table = ImportanceTable::new(dataset.len());
    for id in dataset.ids() {
        table.record_loss(id, if id.0 < 100 { 10.0 + id.0 as f64 } else { 0.05 });
    }
    let hlist = HList::top_fraction(&table, 0.5);
    cache.update_hlist(job, &hlist);
    cache.on_epoch_start(job, Epoch(0));
    println!(
        "H-list holds {} samples; admission bar starts at {}",
        hlist.len(),
        hlist.min_importance().expect("non-empty")
    );
    println!(
        "regions: H-cache {} + L-cache {} = {}\n",
        cache.h_capacity(),
        cache.l_capacity(),
        cache.capacity()
    );

    let mut now = SimTime::ZERO;
    println!("cold H-sample reads (miss -> admitted by importance):");
    for id in [SampleId(0), SampleId(1), SampleId(2)] {
        let f = cache.fetch(job, id, dataset.sample_size(id), now, &mut storage);
        show(&f, id);
        now = f.ready_at;
    }

    println!("\nsame samples again (H-cache hits, microseconds not milliseconds):");
    for id in [SampleId(0), SampleId(1), SampleId(2)] {
        let f = cache.fetch(job, id, dataset.sample_size(id), now, &mut storage);
        show(&f, id);
        now = f.ready_at;
    }

    println!("\nL-sample reads (cold L-cache -> storage, loader packs in background):");
    for id in [SampleId(900), SampleId(901)] {
        let f = cache.fetch(job, id, dataset.sample_size(id), now, &mut storage);
        show(&f, id);
        now = f.ready_at;
    }

    // Give the loading thread a moment of virtual time, then miss again.
    now += icache::types::SimDuration::from_millis(500);
    println!("\nafter the loading thread lands a package (hits or substitution):");
    for id in [SampleId(902), SampleId(903), SampleId(904)] {
        let f = cache.fetch(job, id, dataset.sample_size(id), now, &mut storage);
        show(&f, id);
        now = f.ready_at;
    }

    let s = cache.stats();
    println!(
        "\ntotals: {} H-hits, {} L-hits, {} substitutions, {} misses ({} inserted, {} evicted)",
        s.h_hits, s.l_hits, s.substitutions, s.misses, s.insertions, s.evictions
    );
    println!(
        "cache holds {} / {} across {} H-samples and {} L-samples",
        cache.used_bytes(),
        cache.capacity(),
        cache.h_len(),
        cache.l_len()
    );
    println!("storage served {} reads", storage.stats().total_reads());
    Ok(())
}
