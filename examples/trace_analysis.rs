//! Trace analysis: record every cache decision of a training run with
//! [`icache::sim::TracingCache`], then analyse the trace — outcome mix,
//! reuse distances, substitution behaviour — and replay it against an
//! alternative policy.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use icache::baselines::LruCache;
use icache::core::{CacheSystem, IcacheConfig, IcacheManager};
use icache::dnn::ModelProfile;
use icache::sim::replay::{replay, summarize, Trace};
use icache::sim::{run_single_job, JobConfig, SamplingMode, TracingCache};
use icache::storage::{Pfs, PfsConfig};
use icache::types::{Dataset, JobId};
use std::collections::HashMap;

fn main() -> Result<(), icache::types::Error> {
    let dataset = Dataset::cifar10().scaled(0.05)?;

    // 1. Train ShuffleNet behind iCache with tracing on.
    let mut cfg = JobConfig::new(JobId(0), ModelProfile::shufflenet(), dataset.clone());
    cfg.epochs = 3;
    cfg.sampling = SamplingMode::Iis { fraction: 0.7 };
    let manager = IcacheManager::new(IcacheConfig::for_dataset(&dataset, 0.2)?, &dataset)?;
    let mut traced = TracingCache::new(manager, 200_000);
    let mut storage = Pfs::new(PfsConfig::orangefs_default())?;
    let metrics = run_single_job(cfg, &mut traced, &mut storage)?;

    println!(
        "recorded {} fetch events over {} epochs (truncated: {})\n",
        traced.events().len(),
        metrics.epochs.len(),
        traced.is_truncated()
    );

    // 2. Outcome mix.
    println!("outcome mix:");
    let counts = traced.kind_counts();
    let total: u64 = counts.values().sum();
    let mut kinds: Vec<_> = counts.iter().collect();
    kinds.sort_by_key(|(_, &c)| std::cmp::Reverse(c));
    for (kind, &count) in kinds {
        println!(
            "  {kind:5} {count:>7}  ({:.1}%)",
            count as f64 / total as f64 * 100.0
        );
    }

    // 3. Reuse distances: how many other fetches separate two accesses to
    // the same sample? (Large distances are why LRU fails here, §II-C.)
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    let mut distances: Vec<usize> = Vec::new();
    for (i, e) in traced.events().iter().enumerate() {
        if let Some(prev) = last_seen.insert(e.requested.0, i) {
            distances.push(i - prev);
        }
    }
    distances.sort_unstable();
    if !distances.is_empty() {
        let pick = |q: f64| distances[((distances.len() - 1) as f64 * q) as usize];
        println!("\nreuse distances (fetches between re-accesses of one sample):");
        println!(
            "  p10 {:>7}   p50 {:>7}   p90 {:>7}",
            pick(0.1),
            pick(0.5),
            pick(0.9)
        );
        println!(
            "  cache holds ~{} samples -> distances far above that defeat recency-based caching",
            (dataset.len() as f64 * 0.2) as u64
        );
    }

    // 4. Substitution behaviour: requested vs served.
    let subs: Vec<_> = traced
        .events()
        .iter()
        .filter(|e| e.kind() == "sub")
        .take(5)
        .map(|e| format!("{} -> {}", e.requested, e.served))
        .collect();
    println!(
        "\nfirst substitutions (requested -> served): {}",
        subs.join(", ")
    );

    // 5. Replay the same request stream against a plain LRU for contrast.
    let trace = Trace::parse_jsonl(&traced.to_jsonl())?;
    let mut lru = LruCache::new(dataset.total_bytes().scaled(0.2));
    let mut storage = Pfs::new(PfsConfig::orangefs_default())?;
    let rep = replay(&trace, &dataset, &mut lru, &mut storage);
    println!(
        "\nsame request stream through a plain LRU: {}",
        summarize(&rep)
    );
    println!(
        "iCache hit ratio on the live run: {:.1}%",
        traced.stats().hit_ratio() * 100.0
    );
    Ok(())
}
