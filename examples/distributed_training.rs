//! Distributed data-parallel training across four nodes with the
//! distributed iCache (§III-E): per-node caches, a shared directory
//! key-value store, and peer-to-peer cache reads over the interconnect.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use icache::core::{CacheSystem, DistributedCache, DistributedConfig};
use icache::dnn::ModelProfile;
use icache::sim::{run_multi_job, JobConfig, SamplingMode};
use icache::storage::{Nfs, NfsConfig, StorageBackend};
use icache::types::{Dataset, JobId};

fn main() -> Result<(), icache::types::Error> {
    const NODES: u32 = 4;
    let dataset = Dataset::cifar10().scaled(0.1)?;

    // One worker per node, each training a disjoint shard of every epoch
    // (PyTorch DistributedSampler semantics).
    let configs: Vec<JobConfig> = (0..NODES)
        .map(|k| {
            let mut c = JobConfig::new(JobId(k), ModelProfile::resnet18(), dataset.clone());
            c.epochs = 4;
            c.shard = Some((k, NODES));
            c.sampling = SamplingMode::Iis { fraction: 0.7 };
            c.seed = 1234; // shards share one plan, hence one seed
            c
        })
        .collect();

    let mut cluster = DistributedCache::new(
        DistributedConfig::for_dataset(&dataset, NODES as usize, 0.2)?,
        &dataset,
    )?;
    let mut nfs = Nfs::new(NfsConfig::cloud_default())?;

    println!("{NODES}-node data-parallel ResNet18 on CIFAR-10 over NFS...\n");
    let out = run_multi_job(configs, &mut cluster, &mut nfs)?;

    for (k, m) in out.iter().enumerate() {
        println!(
            "node{k}: epoch {:>9}  samples/epoch {:>5}  stall {:>9}",
            format!("{}", m.avg_epoch_time_steady()),
            m.epochs[1].samples_fetched,
            format!("{}", m.avg_stall_time_steady()),
        );
    }

    println!();
    println!("cluster capacity: {}", cluster.capacity());
    println!("directory entries: {}", cluster.directory().len());
    println!("peer-cache hits:   {}", cluster.remote_hits());
    println!("storage reads:     {}", nfs.stats().total_reads());
    println!();
    println!(
        "The directory guarantees no sample is cached twice; a miss on one node is \
         served by a peer's cache before falling back to NFS (paper Fig. 13)."
    );
    Ok(())
}
