//! Hyper-parameter search: several jobs train different models on the
//! *same* dataset and share one cache — the paper's §V-H scenario.
//!
//! Compares an uncoordinated shared LRU against iCache's multi-job module
//! (cache-benefit probing + aggregated importance values).
//!
//! ```sh
//! cargo run --release --example hyperparam_search
//! ```

use icache::baselines::LruCache;
use icache::core::{IcacheConfig, IcacheManager};
use icache::dnn::ModelProfile;
use icache::sim::{run_multi_job, JobConfig, RunMetrics, SamplingMode};
use icache::storage::{Pfs, PfsConfig};
use icache::types::{Dataset, JobId};

fn jobs(dataset: &Dataset, iis: bool) -> Vec<JobConfig> {
    // A small "search": the same dataset, two different architectures.
    let models = [ModelProfile::shufflenet(), ModelProfile::resnet50()];
    models
        .into_iter()
        .enumerate()
        .map(|(k, model)| {
            let mut c = JobConfig::new(JobId(k as u32), model, dataset.clone());
            c.epochs = 4;
            c.seed = 77 + k as u64 * 1_000_003;
            if iis {
                c.sampling = SamplingMode::Iis { fraction: 0.7 };
            }
            c
        })
        .collect()
}

fn describe(label: &str, out: &[RunMetrics]) {
    println!("{label}:");
    for m in out {
        println!(
            "  {:10} epoch {:>9}  hit {:>5.1}%  top1 {:.2}",
            m.model,
            format!("{}", m.avg_epoch_time_steady()),
            m.epochs[1..].iter().map(|e| e.job_hit_ratio()).sum::<f64>()
                / (m.epochs.len() - 1) as f64
                * 100.0,
            m.final_top1()
        );
    }
    let completion = out
        .iter()
        .map(|m| m.total_time().as_secs_f64())
        .fold(0.0f64, f64::max);
    println!("  completion (slowest job): {completion:.2}s\n");
}

fn main() -> Result<(), icache::types::Error> {
    let dataset = Dataset::cifar10().scaled(0.1)?;

    // Uncoordinated: one shared LRU.
    let mut lru = LruCache::new(dataset.total_bytes().scaled(0.2));
    let mut pfs = Pfs::new(PfsConfig::orangefs_default())?;
    let base = run_multi_job(jobs(&dataset, false), &mut lru, &mut pfs)?;

    // Coordinated: iCache with the multi-job module enabled.
    let mut cfg = IcacheConfig::for_dataset(&dataset, 0.2)?;
    cfg.multi_job = true;
    cfg.probe_samples = 20 * 64;
    let mut manager = IcacheManager::new(cfg, &dataset)?;
    let mut pfs = Pfs::new(PfsConfig::orangefs_default())?;
    let coord = run_multi_job(jobs(&dataset, true), &mut manager, &mut pfs)?;

    println!("two jobs sharing one cache over a simulated OrangeFS\n");
    describe("shared LRU (uncoordinated)", &base);
    describe("iCache multi-job coordination", &coord);

    for job in [JobId(0), JobId(1)] {
        if let Some(benefit) = manager.coordinator().benefit(job) {
            println!(
                "benefit probe {job}: ratio {:.2} -> {}",
                benefit.ratio,
                if benefit.eligible {
                    "cache-eligible"
                } else {
                    "not eligible"
                }
            );
        }
    }
    Ok(())
}
