//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest DSL this workspace uses — the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`boxed`, range and tuple strategies, [`Just`](strategy::Just),
//! [`prop_oneof!`], [`collection::vec`], [`any`], the `prop_assert*`
//! macros, and [`ProptestConfig`](test_runner::ProptestConfig) — on top of
//! a deterministic per-test RNG.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//!
//! * **No shrinking.** A failing case panics with the case index and the
//!   generated input's `Debug` rendering; cases are fully deterministic
//!   (seeded from the test's module path and name), so a failure always
//!   reproduces.
//! * **No persistence files.** `proptest-regressions` files are ignored.
//! * Default case count is 128 (upstream: 256) to keep debug-mode CI fast.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Mirrors upstream proptest: the `PROPTEST_CASES` env var
            // overrides the per-property case count. CI's miri job runs
            // the same suites at 8 cases — the interpreter is orders of
            // magnitude slower than native, and miri checks memory
            // discipline per case, not statistical coverage.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&c| c > 0)
                .unwrap_or(128);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case was rejected (input did not satisfy a precondition);
        /// the runner skips it without failing the test.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "{r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic generator driving strategies.
    ///
    /// Seeded from the owning test's full path, so every test draws an
    /// independent, reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator for the test identified by `path`.
        pub fn deterministic(path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in path.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking: a
    /// strategy simply draws a value from the deterministic [`TestRng`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; each case picks one uniformly.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    #[inline]
    fn bounded(raw: u64, span: u64) -> u64 {
        (((raw as u128) * (span as u128)) >> 64) as u64
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);

    /// Strategy for the whole domain of a type (see [`crate::arbitrary`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct FullRange<T>(core::marker::PhantomData<T>);

    impl<T> FullRange<T> {
        /// The full-domain strategy for `T`.
        pub fn new() -> Self {
            FullRange(core::marker::PhantomData)
        }
    }

    macro_rules! impl_full_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_full_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for FullRange<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::FullRange;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Produce the canonical strategy for this type.
        fn arbitrary() -> FullRange<Self>
        where
            Self: Sized,
        {
            FullRange::new()
        }
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$( impl Arbitrary for $t {} )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);
}

/// The canonical strategy for `T`'s whole domain (`any::<u64>()` etc.).
pub fn any<T: arbitrary::Arbitrary>() -> strategy::FullRange<T> {
    strategy::FullRange::new()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A permitted size interval for generated collections.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)`: vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` block usually needs.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a proptest body; failures return
/// `Err(TestCaseError::Fail)` from the enclosing case, as upstream does.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: for each `fn`, every argument is drawn from its
/// strategy and the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..config.cases {
                    // The body runs in a closure returning TestCaseResult so
                    // `prop_assert*` can early-return Err and `?` works on
                    // TestCaseError results, as upstream allows.
                    let __result: $crate::test_runner::TestCaseResult = (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(e) => {
                            panic!("proptest case {} failed: {}", __case, e)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = TestRng::deterministic("self-test");
        for _ in 0..1_000 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::collection::vec(0u32..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0u64..10).prop_map(|x| x * 2), Just(99u64),];
        let mut rng = TestRng::deterministic("oneof");
        let mut saw_even = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                99 => saw_just = true,
                v => {
                    assert!(v < 20 && v % 2 == 0);
                    saw_even = true;
                }
            }
        }
        assert!(saw_even && saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro binds multiple strategies and tuple patterns.
        #[test]
        fn macro_generates_cases(
            a in 0u64..100,
            (b, c) in (0u32..4, 1u8..5),
            xs in crate::collection::vec(any::<bool>(), 1..10),
        ) {
            prop_assert!(a < 100);
            prop_assert!(b < 4);
            prop_assert!((1..5).contains(&c));
            prop_assert!(!xs.is_empty());
            prop_assert_ne!(xs.len(), 100);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
