//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate provides the (small) subset of the `rand 0.8`
//! API the workspace actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is *not* the upstream ChaCha-based `StdRng`; it is a
//! SplitMix64/xorshift hybrid that is plenty for simulation workloads.
//! What matters for this workspace is determinism: the same seed always
//! produces the same stream, on every platform, forever — simulator
//! traces are asserted byte-identical across runs.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size seed or a bare `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by key-stretching it over the full seed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = crate::splitmix64(state.wrapping_add(0x9E37_79B9_7F4A_7C15));
            let bytes = state.to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a uniform `u64` onto `[0, span)` with the widening-multiply method.
#[inline]
fn bounded(rng_out: u64, span: u64) -> u64 {
    (((rng_out as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator.
    ///
    /// xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 — not the
    /// upstream ChaCha12 `StdRng`, but a high-quality, fully portable
    /// generator whose streams are stable across platforms and releases.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro: nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Commonly used re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never returns identity"
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert!(seen.len() > 90);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}/100000");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
