//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`black_box`], [`criterion_group!`]/[`criterion_main!`] — backed by a
//! simple wall-clock timer instead of criterion's statistical machinery.
//!
//! Each benchmark is warmed up briefly, then timed over a fixed number of
//! batches; the mean and min per-iteration times are printed. Good enough
//! to compare orders of magnitude and catch gross regressions offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in runs every batch
/// at size 1, so this only mirrors the upstream signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Identifier of one parameterized benchmark case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher<'a> {
    samples: u32,
    result: &'a mut TimingResult,
}

#[derive(Debug, Default, Clone, Copy)]
struct TimingResult {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up, then estimate a per-sample iteration count targeting
        // ~2 ms per sample so fast routines are not all timer noise.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters as u32)
            .unwrap_or_default();
        let batch = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed / batch as u32);
            iters += batch;
        }
        *self.result = TimingResult {
            mean: total.checked_div(iters as u32).unwrap_or_default(),
            min,
            iters,
        };
    }

    /// Time `routine` over inputs built by `setup` (setup time excluded
    /// from the mean as far as the wall clock allows: each batch is timed
    /// after its setup completes).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            iters += 1;
        }
        *self.result = TimingResult {
            mean: total.checked_div(iters as u32).unwrap_or_default(),
            min,
            iters,
        };
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for subsequent benches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(2) as u32;
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Benchmark `f` with `input` under `id` within this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 30 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut result = TimingResult::default();
        let mut bencher = Bencher {
            samples: self.samples,
            result: &mut result,
        };
        f(&mut bencher);
        println!(
            "{label:<50} mean {:>12}   min {:>12}   ({} iters)",
            human(result.mean),
            human(result.min),
            result.iters
        );
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { samples: 3 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("in", 5), &5u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(human(Duration::from_nanos(50)), "50 ns");
        assert_eq!(human(Duration::from_micros(5)), "5.000 µs");
    }
}
