//! Offline stand-in for the `bytes` crate.
//!
//! Provides a minimal [`Bytes`]: an immutable, cheaply clonable byte
//! buffer backed by `Arc<[u8]>`. Only the surface this workspace uses is
//! implemented.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref().len(), 1024);
    }
}
