//! Offline stand-in for the `loom` crate.
//!
//! Real loom replaces `std::thread` and `std::sync` with instrumented
//! versions and exhaustively explores every interleaving of a bounded
//! concurrent closure. This build environment has no registry access,
//! so this stand-in keeps loom's *API shape* — [`model`], [`thread`],
//! [`sync`] — on top of plain `std`: [`model`] stress-iterates the
//! closure with real OS threads instead of enumerating schedules.
//!
//! Differences from upstream, deliberately accepted for an offline
//! build:
//!
//! * **Probabilistic, not exhaustive.** Each iteration runs one real
//!   interleaving; bugs that need a precise schedule may survive. The
//!   iteration count is high enough that lock-ordering deadlocks and
//!   torn-invariant races surface in practice.
//! * `sync` and `thread` re-export `std` directly, so code under test
//!   runs its production synchronization, not a simulation.
//! * Built with `RUSTFLAGS="--cfg loom"` (how real loom tests are
//!   invoked) the iteration count rises from [`FAST_ITERS`] to
//!   [`MODEL_ITERS`]; the `LOOM_ITERS` env var overrides both.

#![forbid(unsafe_code)]

/// Iterations of a [`model`] closure in a plain `cargo test` run.
pub const FAST_ITERS: usize = 64;

/// Iterations of a [`model`] closure under `RUSTFLAGS="--cfg loom"`.
pub const MODEL_ITERS: usize = 1024;

/// Mirrors `loom::thread`.
pub mod thread {
    pub use std::thread::{current, park, spawn, yield_now, Builder, JoinHandle};
}

/// Mirrors `loom::sync`.
pub mod sync {
    pub use std::sync::{
        Arc, Barrier, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    /// Mirrors `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// How many times [`model`] runs its closure.
pub fn iterations() -> usize {
    if let Ok(v) = std::env::var("LOOM_ITERS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    #[cfg(loom)]
    {
        MODEL_ITERS
    }
    #[cfg(not(loom))]
    {
        FAST_ITERS
    }
}

/// Run `f` repeatedly, each run on fresh state, the way a loom model
/// is run once per explored schedule. The closure must spawn its
/// threads via [`thread::spawn`] (or `std::thread::scope`) and panic
/// on any invariant violation — a panic in any iteration fails the
/// test.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    for _ in 0..iterations() {
        f();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sync::atomic::{AtomicUsize, Ordering};
    use sync::Arc;

    // One test, not two: `iterations` reads an env var, and parallel
    // tests mutating the same var race.
    #[test]
    fn model_runs_the_closure_iterations_times() {
        std::env::set_var("LOOM_ITERS", "3");
        assert_eq!(iterations(), 3);
        let runs = Arc::new(AtomicUsize::new(0));
        let seen = runs.clone();
        model(move || {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), 3);
        std::env::remove_var("LOOM_ITERS");
        assert!(iterations() >= FAST_ITERS);
    }
}
